package dense_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/dense/reftest"
	"csrplus/internal/par"
)

// randMat fills a fresh matrix with unit normals. (The internal test
// package has its own copy; external test files cannot share it.)
func randMat(rng *rand.Rand, r, c int) *dense.Mat {
	m := dense.NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// bitEq fails the test with the first differing element if got is not
// bitwise-equivalent to want (NaN ≡ NaN, ±0 distinct).
func bitEq(t *testing.T, what string, got, want *dense.Mat) {
	t.Helper()
	if i, j, ok := reftest.Diff(got, want); !ok {
		if i < 0 {
			t.Fatalf("%s: shape %dx%d, want %dx%d", what, got.Rows, got.Cols, want.Rows, want.Cols)
		}
		t.Fatalf("%s: first difference at (%d, %d): got %v (% x), want %v (% x)",
			what, i, j, got.At(i, j), math.Float64bits(got.At(i, j)),
			want.At(i, j), math.Float64bits(want.At(i, j)))
	}
}

// Shapes chosen to clear par.DefaultThreshold (2^20 flops) so the
// parallel paths actually run: 3000*64*16 ≈ 3.1M, 60000*16*16 ≈ 15M.
func parallelFixtures(seed int64) (aWide, bWide, aTall, bTall *dense.Mat) {
	rng := rand.New(rand.NewSource(seed))
	aWide, bWide = randMat(rng, 3000, 16), randMat(rng, 64, 16)
	aTall, bTall = randMat(rng, 60000, 16), randMat(rng, 60000, 16)
	return
}

func TestMulTParallelMatchesReferenceBitwise(t *testing.T) {
	a, b, _, _ := parallelFixtures(11)
	bitEq(t, "parallel MulT vs reftest.MulT", dense.MulT(a, b), reftest.MulT(a, b))
}

// relEqual reports element-wise agreement within a relative-ish epsilon
// scaled by the larger magnitude (an ulp-style bound for reordered sums).
func relEqual(x, y *dense.Mat, eps float64) bool {
	if x.Rows != y.Rows || x.Cols != y.Cols {
		return false
	}
	for i, v := range x.Data {
		w := y.Data[i]
		scale := math.Max(1, math.Max(math.Abs(v), math.Abs(w)))
		if math.Abs(v-w) > eps*scale {
			return false
		}
	}
	return true
}

func TestTMulParallelMatchesChunkedReferenceBitwise(t *testing.T) {
	_, _, a, b := parallelFixtures(13)
	want := reftest.TMulChunked(a, b, dense.TMulChunkFor(a, b))
	bitEq(t, "chunked TMul vs reftest.TMulChunked", dense.TMul(a, b), want)
	if !relEqual(dense.TMul(a, b), reftest.TMul(a, b), 1e-12) {
		t.Fatal("chunked TMul differs from serial reference beyond rounding")
	}
}

func TestMulParallelMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a, b := randMat(rng, 400, 300), randMat(rng, 300, 200) // 24M flops → parallel
	bitEq(t, "parallel Mul vs reftest.Mul", dense.Mul(a, b), reftest.Mul(a, b))
}

// TestDenseKernelsWorkerCountInvariant pins the package guarantee: every
// parallelised dense kernel returns identical bits at any worker count,
// including the chunk-reduced TMul (its reduction grid depends on the
// problem size only).
func TestDenseKernelsWorkerCountInvariant(t *testing.T) {
	aWide, bWide, aTall, bTall := parallelFixtures(19)
	rng := rand.New(rand.NewSource(23))
	aSq, bSq := randMat(rng, 300, 300), randMat(rng, 300, 300)
	kernels := map[string]func() *dense.Mat{
		"Mul":  func() *dense.Mat { return dense.Mul(aSq, bSq) },
		"MulT": func() *dense.Mat { return dense.MulT(aWide, bWide) },
		"TMul": func() *dense.Mat { return dense.TMul(aTall, bTall) },
	}
	for name, kern := range kernels {
		prev := par.SetMaxWorkers(1)
		want := kern()
		for _, w := range []int{2, 3, 8} {
			par.SetMaxWorkers(w)
			if got := kern(); !got.Equal(want, 0) {
				par.SetMaxWorkers(prev)
				t.Fatalf("%s: %d-worker result differs from 1-worker result", name, w)
			}
		}
		par.SetMaxWorkers(prev)
	}
}

// TestDenseKernelsGOMAXPROCSDeterminism is the satellite requirement
// verbatim: GOMAXPROCS=1 and GOMAXPROCS=N produce equal results for
// every parallelised kernel.
func TestDenseKernelsGOMAXPROCSDeterminism(t *testing.T) {
	aWide, bWide, aTall, bTall := parallelFixtures(29)
	kernels := map[string]func() *dense.Mat{
		"MulT": func() *dense.Mat { return dense.MulT(aWide, bWide) },
		"TMul": func() *dense.Mat { return dense.TMul(aTall, bTall) },
	}
	for name, kern := range kernels {
		old := runtime.GOMAXPROCS(1)
		want := kern()
		runtime.GOMAXPROCS(8)
		got := kern()
		runtime.GOMAXPROCS(old)
		if !got.Equal(want, 0) {
			t.Fatalf("%s: GOMAXPROCS=8 result differs from GOMAXPROCS=1", name)
		}
	}
}

func TestMulTIntoReusesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a, b := randMat(rng, 500, 8), randMat(rng, 20, 8)
	want := reftest.MulT(a, b)

	scratch := dense.NewMat(500, 20)
	got := dense.MulTInto(scratch, a, b)
	if got != scratch {
		t.Fatal("MulTInto did not reuse adequately-sized scratch")
	}
	bitEq(t, "MulTInto(scratch)", got, want)
	// Dirty scratch of larger capacity must be fully overwritten.
	big := dense.NewMat(600, 20)
	for i := range big.Data {
		big.Data[i] = math.NaN()
	}
	got = dense.MulTInto(big, a, b)
	if got != big {
		t.Fatal("MulTInto did not reuse larger-capacity scratch")
	}
	if got.Rows != 500 || got.Cols != 20 || got.HasNaN() {
		t.Fatal("MulTInto left stale contents in reused scratch")
	}
	bitEq(t, "MulTInto(dirty scratch)", got, want)
	// Undersized scratch allocates; nil scratch allocates.
	small := dense.NewMat(3, 3)
	if got = dense.MulTInto(small, a, b); got == small {
		t.Fatal("MulTInto reused undersized scratch")
	}
	bitEq(t, "MulTInto(undersized)", got, want)
	bitEq(t, "MulTInto(nil)", dense.MulTInto(nil, a, b), want)
}

func TestReuse(t *testing.T) {
	m := dense.NewMat(4, 6)
	if got := m.Reuse(3, 8); got != m || got.Rows != 3 || got.Cols != 8 {
		t.Fatalf("Reuse within capacity: got %dx%d, same=%v", got.Rows, got.Cols, got == m)
	}
	if got := m.Reuse(10, 10); got == m || got.Rows != 10 || got.Cols != 10 {
		t.Fatal("Reuse beyond capacity must allocate")
	}
	var nilMat *dense.Mat
	if got := nilMat.Reuse(2, 2); got == nil || got.Rows != 2 {
		t.Fatal("nil Reuse must allocate")
	}
}

// --- Kernel benchmarks (CI runs these with -benchtime=1x as a smoke
// test; EXPERIMENTS.md records full runs at GOMAXPROCS 1 vs N). ---

// BenchmarkKernelMulTQueryShape is the serving hot path's exact GEMM
// shape: Z (n x r) times [U]_{Q,*}ᵀ (|Q| x r)ᵀ at n=100k, r=32, |Q|=32.
func BenchmarkKernelMulTQueryShape(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	z, uq := randMat(rng, 100000, 32), randMat(rng, 32, 32)
	var scratch *dense.Mat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = dense.MulTInto(scratch, z, uq)
	}
}

func BenchmarkKernelMul(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	x, y := randMat(rng, 512, 512), randMat(rng, 512, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.Mul(x, y)
	}
}

// BenchmarkKernelTMul is the H₀ = VᵀUΣ / Gram-matrix shape: tall-skinny
// aᵀb with a small output and a long reduced dimension.
func BenchmarkKernelTMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x, y := randMat(rng, 200000, 16), randMat(rng, 200000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dense.TMul(x, y)
	}
}

// BenchmarkKernelMulTQueryShapeWorkers sweeps the worker count on the
// query-shaped GEMM so the speedup curve (or, on a single-core box, the
// dispatch overhead) is measured directly. EXPERIMENTS.md records runs.
func BenchmarkKernelMulTQueryShapeWorkers(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	z, uq := randMat(rng, 100000, 32), randMat(rng, 32, 32)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := par.SetMaxWorkers(w)
			defer par.SetMaxWorkers(prev)
			var scratch *dense.Mat
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch = dense.MulTInto(scratch, z, uq)
			}
		})
	}
}

// BenchmarkKernelMulTQueryShapeGeneric pins the pure-Go tiled kernels'
// cost on the same shape, so the assembly micro-kernel's margin is
// visible in the same benchstat table.
func BenchmarkKernelMulTQueryShapeGeneric(b *testing.B) {
	if !dense.DotAsmAvailable {
		b.Skip("generic kernels are already the default path")
	}
	prev := dense.SetGenericKernels(true)
	defer dense.SetGenericKernels(prev)
	rng := rand.New(rand.NewSource(1))
	z, uq := randMat(rng, 100000, 32), randMat(rng, 32, 32)
	var scratch *dense.Mat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = dense.MulTInto(scratch, z, uq)
	}
}

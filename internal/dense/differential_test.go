package dense_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/dense/reftest"
	"csrplus/internal/par"
)

// kernelPaths enumerates the kernel implementations compiled into this
// build: the default path and, when the assembly micro-kernels exist,
// the forced pure-Go path. Each differential test runs under every
// path, so both implementations are held to the references bit for bit.
func kernelPaths() []bool {
	if dense.DotAsmAvailable {
		return []bool{false, true}
	}
	return []bool{false}
}

// specials cycled into test matrices so every kernel path crosses NaN,
// infinities, signed zero and subnormals, not just round numbers.
var specials = []float64{
	math.NaN(), math.Inf(1), math.Inf(-1),
	math.Copysign(0, -1), 0,
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64,
}

// ieeeMat is randMat with specials splattered over every seventh slot.
func ieeeMat(rng *rand.Rand, r, c int) *dense.Mat {
	m := randMat(rng, r, c)
	for i := 0; i < len(m.Data); i += 7 {
		m.Data[i] = specials[(i/7)%len(specials)]
	}
	return m
}

// tileSizes is the satellite's shape grid: both sides of every tile
// boundary for the mr=4 register tile, plus empty, single and a
// two-tiles-and-edge size (2·tile+3).
var tileSizes = []int{0, 1, 3, 4, 5, 11}

// TestTiledKernelsMatchReferenceAllShapes sweeps the full m×n×k grid of
// tile-boundary shapes with IEEE-special-laden inputs and holds Mul,
// MulT and TMul bitwise to their frozen references, on every compiled
// kernel path. Shapes are far below the parallel threshold, so this
// pins the serial micro-kernels and their edge cases.
func TestTiledKernelsMatchReferenceAllShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, generic := range kernelPaths() {
		prev := dense.SetGenericKernels(generic)
		for _, m := range tileSizes {
			for _, n := range tileSizes {
				for _, k := range tileSizes {
					a := ieeeMat(rng, m, k)
					b := ieeeMat(rng, n, k)
					tag := fmt.Sprintf("generic=%v m=%d n=%d k=%d", generic, m, n, k)
					bitEq(t, "MulT "+tag, dense.MulT(a, b), reftest.MulT(a, b))
					c := ieeeMat(rng, k, n)
					bitEq(t, "Mul "+tag, dense.Mul(a, c), reftest.Mul(a, c))
					at := ieeeMat(rng, k, m)
					bitEq(t, "TMul "+tag, dense.TMul(at, c), reftest.TMul(at, c))
				}
			}
		}
		dense.SetGenericKernels(prev)
	}
}

// TestMulTRankIntoRankPoints drives the rank-truncated kernel through
// every interesting truncation point — 0, 1, cols−1, cols — plus the
// beyond-cols clamp, into NaN-poisoned scratch that must be fully
// overwritten, comparing bitwise against reftest.MulTRank.
func TestMulTRankIntoRankPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for _, generic := range kernelPaths() {
		prev := dense.SetGenericKernels(generic)
		for _, cols := range []int{1, 4, 5, 11} {
			a, b := ieeeMat(rng, 11, cols), ieeeMat(rng, 7, cols)
			ranks := []int{0, 1, cols - 1, cols, cols + 3}
			for _, rank := range ranks {
				scratch := dense.NewMat(11, 7)
				for i := range scratch.Data {
					scratch.Data[i] = math.NaN()
				}
				got := dense.MulTRankInto(scratch, a, b, rank)
				if got != scratch {
					t.Fatalf("rank=%d: scratch not reused", rank)
				}
				want := reftest.MulTRank(a, b, min(rank, cols))
				bitEq(t, fmt.Sprintf("MulTRankInto generic=%v cols=%d rank=%d", generic, cols, rank), got, want)
			}
		}
		dense.SetGenericKernels(prev)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("MulTRankInto(rank<0) must panic")
		}
	}()
	a := dense.NewMat(2, 2)
	dense.MulTRankInto(nil, a, a, -1)
}

// TestZeroTimesNaNPropagatesInProductionKernels is the regression test
// for the zero-skip bug: the historical mulRange skipped av == 0 and
// silently dropped the IEEE-required NaN from 0·NaN and 0·±Inf terms.
// Every production kernel must now propagate it, on every kernel path.
func TestZeroTimesNaNPropagatesInProductionKernels(t *testing.T) {
	zrow := dense.NewMatFrom(1, 2, []float64{0, 0})
	poison := dense.NewMatFrom(1, 2, []float64{math.NaN(), 1})
	infRow := dense.NewMatFrom(1, 2, []float64{math.Inf(1), 1})
	for _, generic := range kernelPaths() {
		prev := dense.SetGenericKernels(generic)
		if got := dense.MulT(zrow, poison).At(0, 0); !math.IsNaN(got) {
			t.Errorf("generic=%v: MulT dropped 0·NaN, got %v", generic, got)
		}
		if got := dense.MulT(zrow, infRow).At(0, 0); !math.IsNaN(got) {
			t.Errorf("generic=%v: MulT dropped 0·Inf, got %v", generic, got)
		}
		if got := dense.Mul(zrow, poison.T()).At(0, 0); !math.IsNaN(got) {
			t.Errorf("generic=%v: Mul dropped 0·NaN, got %v", generic, got)
		}
		if got := dense.TMul(zrow.T(), poison.T()).At(0, 0); !math.IsNaN(got) {
			t.Errorf("generic=%v: TMul dropped 0·NaN, got %v", generic, got)
		}
		dense.SetGenericKernels(prev)
	}
}

// TestKernelsWorkerSweepBitwiseVsReference runs shapes that clear the
// parallel threshold under worker counts {1, 2, 3, 7} and holds every
// kernel bitwise to its reference at each count — the end-to-end
// determinism contract, not just worker-vs-worker agreement. Shapes
// exercise the general panelled path too: rank > kcPanel, output
// columns > ncPanel, rows crossing mcPanel and the worker split.
func TestKernelsWorkerSweepBitwiseVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	// 170 output cols > ncPanel(128); 300 inner > kcPanel(256);
	// 402 rows cross mcPanel(64) and leave tile edges at every split.
	a, b := randMat(rng, 402, 300), randMat(rng, 170, 300)
	wantMulT := reftest.MulT(a, b)
	x, y := randMat(rng, 402, 300), randMat(rng, 300, 170)
	wantMul := reftest.Mul(x, y)
	g, h := randMat(rng, 70001, 15), randMat(rng, 70001, 13)
	wantTMul := reftest.TMulChunked(g, h, dense.TMulChunkFor(g, h))
	for _, generic := range kernelPaths() {
		prevG := dense.SetGenericKernels(generic)
		for _, w := range []int{1, 2, 3, 7} {
			prev := par.SetMaxWorkers(w)
			tag := fmt.Sprintf("generic=%v workers=%d", generic, w)
			bitEq(t, "MulT "+tag, dense.MulT(a, b), wantMulT)
			bitEq(t, "Mul "+tag, dense.Mul(x, y), wantMul)
			bitEq(t, "TMul "+tag, dense.TMul(g, h), wantTMul)
			par.SetMaxWorkers(prev)
		}
		dense.SetGenericKernels(prevG)
	}
}

// TestAsmAndGenericKernelsAgree pins the two compiled implementations
// against each other directly on panel-crossing shapes (a stronger
// statement than each-vs-reference when the reference shapes are
// smaller). Skipped on builds with a single implementation.
func TestAsmAndGenericKernelsAgree(t *testing.T) {
	if !dense.DotAsmAvailable {
		t.Skip("single kernel implementation in this build")
	}
	rng := rand.New(rand.NewSource(73))
	a, b := ieeeMat(rng, 137, 261), ieeeMat(rng, 131, 261)
	prev := dense.SetGenericKernels(false)
	asm := dense.MulT(a, b)
	dense.SetGenericKernels(true)
	gen := dense.MulT(a, b)
	dense.SetGenericKernels(prev)
	bitEq(t, "asm MulT vs generic MulT", asm, gen)

	g, h := ieeeMat(rng, 4099, 9), ieeeMat(rng, 4099, 6)
	dense.SetGenericKernels(false)
	asmT := dense.TMul(g, h)
	dense.SetGenericKernels(true)
	genT := dense.TMul(g, h)
	dense.SetGenericKernels(prev)
	bitEq(t, "asm TMul vs generic TMul", asmT, genT)
}

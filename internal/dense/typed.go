package dense

// typed.go is the typed-source path behind the quantized index tiers: a
// read-only matrix whose elements are stored as float64, float32, or int8
// with per-column dequantisation scales, plus a rank-truncated GEMM that
// dequantises rows in cache-sized bands and feeds them to the same
// register-tiled micro-kernels the float64 path uses.
//
// The float64 kind is a zero-cost view over a []float64 (the mmap'd
// snapshot blocks), and every Typed entry point delegates straight to the
// float64 kernels for it — bitwise-identical to the untyped path. The
// quantised kinds trade entrywise accuracy (bounded, measured at
// quantisation time) for a 2x/8x smaller footprint and proportionally
// less memory bandwidth on the factor streams.
//
// Determinism contract: dequantisation is elementwise (value = stored *
// scale, in IEEE double), so every kernel here inherits the bitwise
// worker-count-independence of the kernels it feeds.

import (
	"fmt"
	"math"

	"csrplus/internal/par"
)

// Kind enumerates the element storage of a Typed matrix.
type Kind uint8

const (
	// F64 stores IEEE float64 elements — the exact tier.
	F64 Kind = iota
	// F32 stores IEEE float32 elements; dequantisation widens them.
	F32
	// I8 stores int8 codes with a per-column scale: value = code*scale.
	I8
)

// String names the kind the way the CLI flags spell it.
func (k Kind) String() string {
	switch k {
	case F64:
		return "f64"
	case F32:
		return "f32"
	case I8:
		return "int8"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ElemSize returns the on-disk/in-memory bytes per element.
func (k Kind) ElemSize() int {
	switch k {
	case F64:
		return 8
	case F32:
		return 4
	case I8:
		return 1
	}
	panic(fmt.Sprintf("dense: ElemSize of unknown %v", k))
}

// Typed is a read-only row-major matrix with kind-selected element
// storage. Exactly one of F64/F32/I8 is non-nil (matching Kind); Scale
// holds the per-column dequantisation scales of the I8 kind and is nil
// otherwise. It is immutable after construction, so any number of
// goroutines may read it.
type Typed struct {
	Kind       Kind
	Rows, Cols int
	F64        []float64
	F32        []float32
	I8         []int8
	Scale      []float64
}

// TypedFromMat wraps m as an F64 Typed sharing m's backing array.
func TypedFromMat(m *Mat) *Typed {
	return &Typed{Kind: F64, Rows: m.Rows, Cols: m.Cols, F64: m.Data}
}

// Mat returns the F64 kind's data as a *Mat view (shared backing array).
// It panics for quantised kinds, which have no float64 representation to
// view — callers branch on Kind first.
func (t *Typed) Mat() *Mat {
	if t.Kind != F64 {
		panic(fmt.Sprintf("dense: Mat() on %v Typed", t.Kind))
	}
	return &Mat{Rows: t.Rows, Cols: t.Cols, Data: t.F64}
}

// Bytes reports the payload footprint: Rows*Cols elements at the kind's
// width, plus the scale vector.
func (t *Typed) Bytes() int64 {
	return int64(t.Rows)*int64(t.Cols)*int64(t.Kind.ElemSize()) + int64(len(t.Scale))*8
}

// At dequantises element (i, j).
func (t *Typed) At(i, j int) float64 {
	switch t.Kind {
	case F64:
		return t.F64[i*t.Cols+j]
	case F32:
		return float64(t.F32[i*t.Cols+j])
	default:
		return float64(t.I8[i*t.Cols+j]) * t.Scale[j]
	}
}

// RowInto dequantises row i into dst, which must have length ≥ Cols, and
// returns dst[:Cols].
func (t *Typed) RowInto(i int, dst []float64) []float64 {
	c := t.Cols
	dst = dst[:c]
	switch t.Kind {
	case F64:
		copy(dst, t.F64[i*c:(i+1)*c])
	case F32:
		row := t.F32[i*c : (i+1)*c]
		for j, v := range row {
			dst[j] = float64(v)
		}
	default:
		row := t.I8[i*c : (i+1)*c]
		for j, v := range row {
			dst[j] = float64(v) * t.Scale[j]
		}
	}
	return dst
}

// PickRows dequantises the rows idx, in order, into a fresh
// len(idx) x Cols float64 matrix — the typed counterpart of
// (*Mat).PickRows, used to gather [U]_{Q,*}.
func (t *Typed) PickRows(idx []int) *Mat {
	out := NewMat(len(idx), t.Cols)
	for k, i := range idx {
		t.RowInto(i, out.Row(k))
	}
	return out
}

// SliceRowsView returns a view (no copy) of rows [lo, hi). The view
// shares the backing arrays and the scale vector.
func (t *Typed) SliceRowsView(lo, hi int) *Typed {
	if lo < 0 || hi > t.Rows || lo > hi {
		panic(fmt.Sprintf("dense: SliceRowsView[%d:%d] of %d rows", lo, hi, t.Rows))
	}
	v := &Typed{Kind: t.Kind, Rows: hi - lo, Cols: t.Cols, Scale: t.Scale}
	switch t.Kind {
	case F64:
		v.F64 = t.F64[lo*t.Cols : hi*t.Cols]
	case F32:
		v.F32 = t.F32[lo*t.Cols : hi*t.Cols]
	default:
		v.I8 = t.I8[lo*t.Cols : hi*t.Cols]
	}
	return v
}

// Copy returns a Typed whose payload and scale vector live in freshly
// allocated memory — for detaching a view from storage the caller does
// not control the lifetime of, e.g. factor slices over an mmap.
func (t *Typed) Copy() *Typed {
	c := &Typed{Kind: t.Kind, Rows: t.Rows, Cols: t.Cols}
	if t.Scale != nil {
		c.Scale = append([]float64(nil), t.Scale...)
	}
	switch t.Kind {
	case F64:
		c.F64 = append([]float64(nil), t.F64...)
	case F32:
		c.F32 = append([]float32(nil), t.F32...)
	default:
		c.I8 = append([]int8(nil), t.I8...)
	}
	return c
}

// ColAbsMax returns the per-column maxima max_i |t_ij| of the
// dequantised matrix — the inputs of the truncation/quantisation error
// bounds.
func (t *Typed) ColAbsMax() []float64 {
	mx := make([]float64, t.Cols)
	for i := 0; i < t.Rows; i++ {
		for j := 0; j < t.Cols; j++ {
			if a := math.Abs(t.At(i, j)); a > mx[j] {
				mx[j] = a
			}
		}
	}
	return mx
}

// QuantizeF32 narrows m to the F32 kind. The second result is the
// measured per-column maximum absolute dequantisation error
// max_i |m_ij − float64(float32(m_ij))| — an exact entrywise bound for
// this matrix, not a worst-case ulp estimate.
func QuantizeF32(m *Mat) (*Typed, []float64) {
	t := &Typed{Kind: F32, Rows: m.Rows, Cols: m.Cols, F32: make([]float32, len(m.Data))}
	errs := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		out := t.F32[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			q := float32(v)
			out[j] = q
			if e := math.Abs(v - float64(q)); e > errs[j] {
				errs[j] = e
			}
		}
	}
	return t, errs
}

// QuantizeI8 quantises m to int8 codes with a per-column scale
// s_j = max_i |m_ij| / 127 (a zero column gets scale 0 and all-zero
// codes). Codes are round-to-nearest, so the dequantisation error is at
// most s_j/2 per entry; the second result is the measured per-column
// maximum |m_ij − code*s_j|, which is ≤ s_j/2 and usually tighter.
func QuantizeI8(m *Mat) (*Typed, []float64) {
	t := &Typed{
		Kind: I8, Rows: m.Rows, Cols: m.Cols,
		I8:    make([]int8, len(m.Data)),
		Scale: make([]float64, m.Cols),
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			if a := math.Abs(v); a > t.Scale[j] {
				t.Scale[j] = a
			}
		}
	}
	for j := range t.Scale {
		t.Scale[j] /= 127
	}
	errs := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		out := t.I8[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s := t.Scale[j]
			if s == 0 {
				out[j] = 0
				continue
			}
			q := math.Round(v / s)
			if q > 127 {
				q = 127
			} else if q < -127 {
				q = -127
			}
			out[j] = int8(q)
			if e := math.Abs(v - q*s); e > errs[j] {
				errs[j] = e
			}
		}
	}
	return t, errs
}

// dequantBandRows is how many rows MulTRankTypedInto dequantises per
// inner band: band*Cols float64s must stay comfortably L2-resident next
// to the b operand, and the band must be long enough to amortise the
// dequantisation pass over the |Q| dot products each row feeds.
const dequantBandRows = 512

// MulTRankTypedInto computes a[:, :rank] * (b[:, :rank])ᵀ into out — the
// typed-source counterpart of MulTRankInto. The F64 kind delegates to
// MulTRankInto on a zero-copy view, so its results are bitwise-identical
// to the untyped path. Quantised kinds dequantise a in row bands into a
// per-worker scratch buffer and run the same register-tiled micro-kernels
// over the dequantised band; results are bitwise-deterministic at every
// worker count (each output row is produced by exactly one goroutine from
// elementwise-dequantised inputs) but differ from the exact answer by the
// quantisation error the tier's bound reports.
func MulTRankTypedInto(out *Mat, a *Typed, b *Mat, rank int) *Mat {
	if a.Kind == F64 {
		return MulTRankInto(out, a.Mat(), b, rank)
	}
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("dense: MulTRankTyped %dx%d * (%dx%d)ᵀ: %v", a.Rows, a.Cols, b.Rows, b.Cols, ErrShape))
	}
	if rank < 0 {
		panic(fmt.Sprintf("dense: MulTRankTyped rank %d: %v", rank, ErrShape))
	}
	if rank > a.Cols {
		rank = a.Cols
	}
	out = out.Reuse(a.Rows, b.Rows)
	if rank == 0 {
		for i := range out.Data {
			out.Data[i] = 0
		}
		return out
	}
	m := b.Rows
	flops := int64(a.Rows) * int64(m) * int64(rank)
	par.DoAligned(a.Rows, mr, flops, func(lo, hi int) {
		band := dequantBandRows
		if hi-lo < band {
			band = hi - lo
		}
		buf := make([]float64, band*a.Cols)
		for bl := lo; bl < hi; bl += band {
			bh := bl + band
			if bh > hi {
				bh = hi
			}
			rows := bh - bl
			aBand := &Mat{Rows: rows, Cols: a.Cols, Data: buf[:rows*a.Cols]}
			for i := bl; i < bh; i++ {
				a.RowInto(i, aBand.Row(i-bl))
			}
			outBand := &Mat{Rows: rows, Cols: m, Data: out.Data[bl*m : bh*m]}
			mulTDot(outBand, aBand, b, rank, 0, rows)
		}
	})
	return out
}

package dense

import "csrplus/internal/par"

// DotAsmAvailable reports whether this build carries the amd64 assembly
// micro-kernels (false elsewhere, where only the pure-Go tiles exist).
const DotAsmAvailable = dotAsmAvailable

// SetGenericKernels forces (true) or lifts (false) the pure-Go
// micro-kernel path on builds that have the assembly kernels, so the
// differential suites can hold both implementations to the references
// bit for bit. It returns the previous setting for deferred restore.
func SetGenericKernels(disabled bool) bool {
	prev := dotAsmDisabled.Load()
	dotAsmDisabled.Store(disabled)
	return prev
}

// TMulChunkFor replays TMul's reduction-grid sizing for a given operand
// pair: the chunk length its deterministic chunk-ordered reduction will
// use, or 0 when the product runs the serial single-chunk path. The
// differential suites feed this to reftest.TMulChunked so TMul is held
// bitwise to its reference at *every* shape, parallel or not.
func TMulChunkFor(a, b *Mat) int {
	outLen := a.Cols * b.Cols
	flops := int64(a.Rows) * int64(outLen)
	maxChunks := tmulMaxChunks
	if outLen > 0 && tmulMaxPartial/outLen < maxChunks {
		maxChunks = tmulMaxPartial / outLen
	}
	if flops < par.DefaultThreshold || maxChunks < 2 || outLen == 0 {
		return 0
	}
	minChunk := 1 + (1<<17)/outLen
	chunk, count := par.Grid(a.Rows, minChunk, maxChunks)
	if count < 2 {
		return 0
	}
	return chunk
}

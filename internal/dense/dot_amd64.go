package dense

// dotAsmAvailable gates the SSE2 packed micro-kernel in dot_amd64.s.
// SSE2 is the amd64 baseline (GOAMD64=v1), so no runtime feature
// detection is needed; every amd64 build may use it.
const dotAsmAvailable = true

// dotKernel4x2 accumulates the 4×2 output tile {o0, o1, o2, o3}[0:2]
// from four a rows of length k and a packed b pair bp (k interleaved
// [b0[t], b1[t]] couples, as laid out by packBPairs). acc != 0 loads the
// existing tile values as starting accumulators; acc == 0 starts from
// zero. Each SSE lane carries one output column's accumulator through
// the same ascending-k multiply-add sequence as the scalar kernel —
// per-lane MULPD/ADDPD rounding is exactly scalar MULSD/ADDSD rounding,
// so the result is bitwise-identical to dotTile4x2 and to the reftest
// references.
//
//go:noescape
func dotKernel4x2(o0, o1, o2, o3, a0, a1, a2, a3, bp *float64, k, acc int64)

// tmulKernel4x2 accumulates the 4×2 tile {d0..d3}[0:2] of aᵀ·b over k
// steps, reading a at astride-spaced scalars from a0 (column i, rows
// ascending) and b as contiguous [j, j+1] pairs at bstride-spaced rows.
// Always accumulates into the existing tile values. Lane semantics as
// dotKernel4x2: bitwise-identical to tmulTile4x2.
//
//go:noescape
func tmulKernel4x2(d0, d1, d2, d3, a0, b0 *float64, astride, bstride, k int64)

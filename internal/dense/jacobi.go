package dense

import (
	"fmt"
	"math"
	"sort"
)

// maxJacobiSweeps bounds both Jacobi iterations; convergence is normally
// reached in well under 30 sweeps for the small matrices this package
// targets (k x k with k = rank + oversampling).
const maxJacobiSweeps = 60

// SVDResult holds a (thin) singular value decomposition A = U * diag(S) * Vᵀ
// with U (m x k), S (k), V (n x k), singular values sorted descending.
type SVDResult struct {
	U *Mat
	S []float64
	V *Mat
}

// SVDJacobi computes the thin SVD of an m x n matrix with m >= n using
// one-sided Jacobi rotations on the columns of A. It is O(m n² · sweeps)
// and numerically robust — the standard choice for the small dense factor
// produced by randomized range finding, standing in for MATLAB's svd(B, 0).
//
// Columns whose singular value underflows below ulp-scale are returned with
// zero U columns; callers that need a full orthonormal U must
// re-orthonormalise (the truncated-SVD driver discards those columns
// anyway).
func SVDJacobi(a *Mat) (*SVDResult, error) {
	m, n := a.Rows, a.Cols
	if m < n {
		return nil, fmt.Errorf("dense: SVDJacobi %dx%d needs rows >= cols (transpose first): %w", m, n, ErrShape)
	}
	w := a.Clone() // rotated in place; ends as U * diag(S)
	v := Eye(n)
	// Column squared-norms cache, updated after each rotation.
	sq := make([]float64, n)
	colDot := func(i, j int) float64 {
		s := 0.0
		for r := 0; r < m; r++ {
			s += w.Data[r*n+i] * w.Data[r*n+j]
		}
		return s
	}
	for i := 0; i < n; i++ {
		sq[i] = colDot(i, i)
	}
	total := 0.0
	for _, s := range sq {
		total += s
	}
	tol := 1e-14 * total
	if tol == 0 {
		tol = 1e-300
	}
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		rotated := false
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				g := colDot(i, j)
				if math.Abs(g) <= 1e-15*math.Sqrt(sq[i]*sq[j])+tol*1e-4 {
					continue
				}
				rotated = true
				// Jacobi rotation annihilating the (i, j) off-diagonal of
				// the implicit Gram matrix.
				zeta := (sq[j] - sq[i]) / (2 * g)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				for r := 0; r < m; r++ {
					wi, wj := w.Data[r*n+i], w.Data[r*n+j]
					w.Data[r*n+i] = cs*wi - sn*wj
					w.Data[r*n+j] = sn*wi + cs*wj
				}
				for r := 0; r < n; r++ {
					vi, vj := v.Data[r*n+i], v.Data[r*n+j]
					v.Data[r*n+i] = cs*vi - sn*vj
					v.Data[r*n+j] = sn*vi + cs*vj
				}
				si, sj := sq[i], sq[j]
				sq[i] = cs*cs*si - 2*sn*cs*g + sn*sn*sj
				sq[j] = sn*sn*si + 2*sn*cs*g + cs*cs*sj
			}
		}
		if !rotated {
			break
		}
	}
	// Extract singular values and normalise U's columns.
	type col struct {
		sigma float64
		idx   int
	}
	cols := make([]col, n)
	for i := 0; i < n; i++ {
		cols[i] = col{math.Sqrt(math.Max(sq[i], 0)), i}
	}
	sort.SliceStable(cols, func(a, b int) bool { return cols[a].sigma > cols[b].sigma })
	res := &SVDResult{U: NewMat(m, n), S: make([]float64, n), V: NewMat(n, n)}
	for k, c := range cols {
		res.S[k] = c.sigma
		if c.sigma > 0 {
			inv := 1 / c.sigma
			for r := 0; r < m; r++ {
				res.U.Data[r*n+k] = w.Data[r*n+c.idx] * inv
			}
		}
		for r := 0; r < n; r++ {
			res.V.Data[r*n+k] = v.Data[r*n+c.idx]
		}
	}
	return res, nil
}

// SymEig computes the eigendecomposition of a symmetric n x n matrix using
// the cyclic Jacobi eigenvalue method: a = V diag(w) Vᵀ with eigenvalues
// sorted descending. Symmetry is assumed, not checked; only the given
// matrix's symmetric part effectively contributes.
func SymEig(a *Mat) (w []float64, v *Mat, err error) {
	if a.Rows != a.Cols {
		return nil, nil, fmt.Errorf("dense: SymEig %dx%d: %w", a.Rows, a.Cols, ErrShape)
	}
	n := a.Rows
	m := a.Clone()
	// Symmetrise defensively so rounding in callers cannot break convergence.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, s)
			m.Set(j, i, s)
		}
	}
	v = Eye(n)
	for sweep := 0; sweep < maxJacobiSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m.At(i, j) * m.At(i, j)
			}
		}
		if off < 1e-28*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				theta := (m.At(q, q) - m.At(p, p)) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(1+theta*theta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for k := 0; k < n; k++ {
					mkp, mkq := m.At(k, p), m.At(k, q)
					m.Set(k, p, c*mkp-s*mkq)
					m.Set(k, q, s*mkp+c*mkq)
				}
				for k := 0; k < n; k++ {
					mpk, mqk := m.At(p, k), m.At(q, k)
					m.Set(p, k, c*mpk-s*mqk)
					m.Set(q, k, s*mpk+c*mqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	w = make([]float64, n)
	idx := make([]int, n)
	for i := range w {
		w[i] = m.At(i, i)
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return w[idx[a]] > w[idx[b]] })
	ws := make([]float64, n)
	vs := NewMat(n, n)
	for k, i := range idx {
		ws[k] = w[i]
		for r := 0; r < n; r++ {
			vs.Set(r, k, v.At(r, i))
		}
	}
	return ws, vs, nil
}

// SSE2 packed micro-kernels for the register-tiled GEMMs in tile.go.
//
// Both kernels map the two output *columns* of a 4×2 register tile onto
// the two lanes of an XMM register. Lanes never map onto the reduction
// dimension k: each lane carries exactly one output element's
// accumulator through the same ascending-k multiply-add sequence as the
// scalar Go kernels, and per-lane MULPD/ADDPD rounding is identical to
// scalar MULSD/ADDSD rounding (Go leaves MXCSR at round-to-nearest with
// FTZ/DAZ off), so results are bitwise-identical to the pure-Go tiles
// and to the reftest references — NaN, ±Inf, signed zeros and
// subnormals included.
//
// SSE2 only: MOVSD/MOVUPD/UNPCKLPD/MULPD/ADDPD are all in the amd64
// baseline (GOAMD64=v1), so there is no CPU feature gate. R14 (the
// ABIInternal g register) and X15 (the ABIInternal zero register) are
// deliberately untouched.

#include "textflag.h"

// func dotKernel4x2(o0, o1, o2, o3, a0, a1, a2, a3, bp *float64, k, acc int64)
//
// X0..X3 hold the tile accumulators [s_i0, s_i1] for rows i = 0..3.
// bp walks k interleaved [b0[t], b1[t]] couples (packBPairs layout), so
// the two column operands arrive as one 16-byte load; the four a
// operands are scalar loads broadcast with UNPCKLPD. The k loop is
// unrolled by two — the unrolled adds stay sequentially dependent per
// accumulator, preserving per-element order.
TEXT ·dotKernel4x2(SB), NOSPLIT, $0-88
	MOVQ o0+0(FP), DI
	MOVQ o1+8(FP), SI
	MOVQ o2+16(FP), R8
	MOVQ o3+24(FP), R9
	MOVQ a0+32(FP), R10
	MOVQ a1+40(FP), R11
	MOVQ a2+48(FP), R12
	MOVQ a3+56(FP), R13
	MOVQ bp+64(FP), R15
	MOVQ k+72(FP), CX
	MOVQ acc+80(FP), AX
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	TESTQ AX, AX
	JE   prep
	MOVUPD (DI), X0
	MOVUPD (SI), X1
	MOVUPD (R8), X2
	MOVUPD (R9), X3

prep:
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-2, DX

pair:
	CMPQ BX, DX
	JGE  tail
	MOVUPD (R15), X4
	MOVSD  (R10)(BX*8), X5
	UNPCKLPD X5, X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVSD  (R11)(BX*8), X6
	UNPCKLPD X6, X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVSD  (R12)(BX*8), X7
	UNPCKLPD X7, X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVSD  (R13)(BX*8), X8
	UNPCKLPD X8, X8
	MULPD  X4, X8
	ADDPD  X8, X3
	MOVUPD 16(R15), X9
	MOVSD  8(R10)(BX*8), X10
	UNPCKLPD X10, X10
	MULPD  X9, X10
	ADDPD  X10, X0
	MOVSD  8(R11)(BX*8), X11
	UNPCKLPD X11, X11
	MULPD  X9, X11
	ADDPD  X11, X1
	MOVSD  8(R12)(BX*8), X12
	UNPCKLPD X12, X12
	MULPD  X9, X12
	ADDPD  X12, X2
	MOVSD  8(R13)(BX*8), X13
	UNPCKLPD X13, X13
	MULPD  X9, X13
	ADDPD  X13, X3
	ADDQ $32, R15
	ADDQ $2, BX
	JMP  pair

tail:
	CMPQ BX, CX
	JGE  store
	MOVUPD (R15), X4
	MOVSD  (R10)(BX*8), X5
	UNPCKLPD X5, X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVSD  (R11)(BX*8), X6
	UNPCKLPD X6, X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVSD  (R12)(BX*8), X7
	UNPCKLPD X7, X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVSD  (R13)(BX*8), X8
	UNPCKLPD X8, X8
	MULPD  X4, X8
	ADDPD  X8, X3

store:
	MOVUPD X0, (DI)
	MOVUPD X1, (SI)
	MOVUPD X2, (R8)
	MOVUPD X3, (R9)
	RET

// func tmulKernel4x2(d0, d1, d2, d3, a0, b0 *float64, astride, bstride, k int64)
//
// TMul variant: b's [j, j+1] pair is contiguous in the natural row-major
// layout (no packing needed), a is read as astride-spaced scalars down
// column i. Strides are element counts; converted to bytes on entry.
// Always accumulates into the existing tile values (TMul callers pass
// zeroed or partially-accumulated buffers).
TEXT ·tmulKernel4x2(SB), NOSPLIT, $0-72
	MOVQ d0+0(FP), DI
	MOVQ d1+8(FP), SI
	MOVQ d2+16(FP), R8
	MOVQ d3+24(FP), R9
	MOVQ a0+32(FP), R10
	MOVQ b0+40(FP), R11
	MOVQ astride+48(FP), R12
	MOVQ bstride+56(FP), R13
	MOVQ k+64(FP), CX
	SHLQ $3, R12
	SHLQ $3, R13
	MOVUPD (DI), X0
	MOVUPD (SI), X1
	MOVUPD (R8), X2
	MOVUPD (R9), X3
	TESTQ CX, CX
	JE   tdone

tloop:
	MOVUPD (R11), X4
	MOVSD  (R10), X5
	UNPCKLPD X5, X5
	MULPD  X4, X5
	ADDPD  X5, X0
	MOVSD  8(R10), X6
	UNPCKLPD X6, X6
	MULPD  X4, X6
	ADDPD  X6, X1
	MOVSD  16(R10), X7
	UNPCKLPD X7, X7
	MULPD  X4, X7
	ADDPD  X7, X2
	MOVSD  24(R10), X8
	UNPCKLPD X8, X8
	MULPD  X4, X8
	ADDPD  X8, X3
	ADDQ R12, R10
	ADDQ R13, R11
	DECQ CX
	JNE  tloop

tdone:
	MOVUPD X0, (DI)
	MOVUPD X1, (SI)
	MOVUPD X2, (R8)
	MOVUPD X3, (R9)
	RET

package dense_test

import (
	"math"
	"testing"

	"csrplus/internal/dense"
	"csrplus/internal/dense/reftest"
	"csrplus/internal/par"
)

// Differential fuzzing of the tiled GEMM kernels against the frozen
// references in internal/dense/reftest. Dimensions, the rank truncation
// point and the worker count come from the fuzzed scalars; matrix
// payloads are raw fuzz bytes reinterpreted as float64 bit patterns, so
// the corpus explores NaNs, infinities, signed zeros, subnormals and
// garbage exponents — exactly the values a "looks right on random
// normals" kernel bug hides behind. `go test` replays the checked-in
// corpus under testdata/fuzz; `go test -fuzz=FuzzMulT ./internal/dense`
// explores. Every case is checked on every compiled kernel path
// (assembly and pure Go).

// fuzzDims caps fuzzed matrix sides: big enough to cross every 4×2
// register-tile edge several times, small enough to replay thousands of
// corpus entries per second.
const fuzzDims = 24

// matFromBytes builds an r×c matrix whose elements are successive
// 8-byte windows of raw (cycled, offset by phase) reinterpreted as
// float64 bits.
func matFromBytes(r, c int, raw []byte, phase int) *dense.Mat {
	m := dense.NewMat(r, c)
	if len(raw) == 0 {
		return m
	}
	for i := range m.Data {
		var bits uint64
		for b := 0; b < 8; b++ {
			bits |= uint64(raw[(phase+i*8+b)%len(raw)]) << (8 * uint(b))
		}
		m.Data[i] = math.Float64frombits(bits)
	}
	return m
}

// fuzzBitEq is bitEq for fuzz bodies (Errorf so the engine can minimise).
func fuzzBitEq(t *testing.T, what string, got, want *dense.Mat) {
	t.Helper()
	if i, j, ok := reftest.Diff(got, want); !ok {
		t.Errorf("%s: first difference at (%d, %d)", what, i, j)
	}
}

var fuzzSeeds = [][]byte{
	{},
	[]byte("csrplus kernel fuzz seed 0123456789abcdef"),
	// NaN, +Inf, -0 and a subnormal as little-endian float64 bit patterns.
	{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x7f,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x7f,
		0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80,
		0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00},
}

func FuzzMulT(f *testing.F) {
	for _, raw := range fuzzSeeds {
		f.Add(uint8(4), uint8(2), uint8(32), uint8(33), uint8(1), raw) // serving-ish shape, rank clamp
		f.Add(uint8(5), uint8(3), uint8(4), uint8(3), uint8(2), raw)   // tile edges, truncated rank
		f.Add(uint8(0), uint8(7), uint8(1), uint8(0), uint8(0), raw)   // empty row side, rank 0
	}
	f.Fuzz(func(t *testing.T, ar, br, cols, rank, workers uint8, raw []byte) {
		m, n, k := int(ar)%fuzzDims, int(br)%fuzzDims, int(cols)%fuzzDims
		r := int(rank) % (k + 2) // hits 0, interior, cols and the clamp region
		a := matFromBytes(m, k, raw, 0)
		b := matFromBytes(n, k, raw, 3)
		want := reftest.MulTRank(a, b, min(r, k))
		prevW := par.SetMaxWorkers(1 + int(workers)%4)
		defer par.SetMaxWorkers(prevW)
		for _, generic := range kernelPaths() {
			prev := dense.SetGenericKernels(generic)
			fuzzBitEq(t, "MulTRankInto vs reftest.MulTRank", dense.MulTRankInto(nil, a, b, r), want)
			dense.SetGenericKernels(prev)
		}
	})
}

func FuzzMul(f *testing.F) {
	for _, raw := range fuzzSeeds {
		f.Add(uint8(4), uint8(4), uint8(4), uint8(1), raw)
		f.Add(uint8(11), uint8(5), uint8(3), uint8(2), raw)
		f.Add(uint8(1), uint8(0), uint8(9), uint8(0), raw)
	}
	f.Fuzz(func(t *testing.T, ar, inner, bc, workers uint8, raw []byte) {
		m, k, n := int(ar)%fuzzDims, int(inner)%fuzzDims, int(bc)%fuzzDims
		a := matFromBytes(m, k, raw, 0)
		b := matFromBytes(k, n, raw, 5)
		want := reftest.Mul(a, b)
		prevW := par.SetMaxWorkers(1 + int(workers)%4)
		defer par.SetMaxWorkers(prevW)
		for _, generic := range kernelPaths() {
			prev := dense.SetGenericKernels(generic)
			fuzzBitEq(t, "Mul vs reftest.Mul", dense.Mul(a, b), want)
			dense.SetGenericKernels(prev)
		}
	})
}

func FuzzTMul(f *testing.F) {
	for _, raw := range fuzzSeeds {
		f.Add(uint8(16), uint8(4), uint8(4), uint8(1), raw)
		f.Add(uint8(7), uint8(5), uint8(3), uint8(2), raw)
		f.Add(uint8(0), uint8(2), uint8(2), uint8(0), raw)
	}
	f.Fuzz(func(t *testing.T, shared, ac, bc, workers uint8, raw []byte) {
		r, ca, cb := int(shared)%(4*fuzzDims), int(ac)%fuzzDims, int(bc)%fuzzDims
		a := matFromBytes(r, ca, raw, 0)
		b := matFromBytes(r, cb, raw, 7)
		// TMulChunkFor replays the deterministic reduction grid, so the
		// comparison is bitwise whether or not the chunked path engages.
		want := reftest.TMulChunked(a, b, dense.TMulChunkFor(a, b))
		prevW := par.SetMaxWorkers(1 + int(workers)%4)
		defer par.SetMaxWorkers(prevW)
		for _, generic := range kernelPaths() {
			prev := dense.SetGenericKernels(generic)
			fuzzBitEq(t, "TMul vs reftest.TMulChunked", dense.TMul(a, b), want)
			dense.SetGenericKernels(prev)
		}
	})
}

package dense

import (
	"fmt"
	"math"
)

// LU holds an LU factorisation with partial pivoting: P*A = L*U packed in
// lu (unit lower triangle implicit), with piv recording row swaps.
type LU struct {
	lu  *Mat
	piv []int
}

// Factorize computes the LU factorisation of the square matrix a with
// partial pivoting. It returns ErrSingular (wrapped) when a pivot
// underflows to an unusable magnitude.
func Factorize(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("dense: Factorize %dx%d: %w", a.Rows, a.Cols, ErrShape)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot selection.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > pmax {
				p, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("dense: Factorize: zero pivot at column %d: %w", k, ErrSingular)
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) / pivot
			lu.Set(i, k, l)
			if l == 0 {
				continue
			}
			ri, rkk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= l * rkk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv}, nil
}

// SolveVec solves A x = b for x using the factorisation.
func (f *LU) SolveVec(b []float64) ([]float64, error) {
	n := f.lu.Rows
	if len(b) != n {
		return nil, fmt.Errorf("dense: LU.SolveVec len %d vs n=%d: %w", len(b), n, ErrShape)
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution with implicit unit diagonal.
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Solve solves A X = B column-by-column.
func (f *LU) Solve(b *Mat) (*Mat, error) {
	n := f.lu.Rows
	if b.Rows != n {
		return nil, fmt.Errorf("dense: LU.Solve %dx%d rhs for n=%d: %w", b.Rows, b.Cols, n, ErrShape)
	}
	out := NewMat(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		b.Col(j, col)
		x, err := f.SolveVec(col)
		if err != nil {
			return nil, err
		}
		out.SetCol(j, x)
	}
	return out, nil
}

// Inverse returns A⁻¹ for a square matrix, via LU with partial pivoting.
// The CSR-NI baseline uses this on its r² x r² system, exactly as Li et
// al.'s formulation prescribes.
func Inverse(a *Mat) (*Mat, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, fmt.Errorf("dense: Inverse: %w", err)
	}
	return f.Solve(Eye(a.Rows))
}

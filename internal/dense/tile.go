package dense

// This file holds the cache-tiled, register-blocked micro-kernels behind
// the public GEMM entry points in blas.go. All of them compute families
// of dot products in the "dot layout": both operands row-major with the
// reduction dimension contiguous (a·bᵀ directly; a·b goes through one
// blocked transpose of b — the pack step of a classic GEMM — and then
// runs the same kernels).
//
// Bitwise contract. Every kernel here reproduces the frozen naive loops
// in internal/dense/reftest bit for bit, at every worker count. The
// argument is structural, not numerical:
//
//   - each output element has exactly one accumulator, which sums its
//     products in ascending-k order — the reference order. Register
//     tiling only groups *independent* accumulators so their chains
//     interleave in the pipeline; it never reassociates a single sum
//     (and Go never fuses or reorders float arithmetic).
//   - cache blocking over k spills the accumulator to the output buffer
//     between k panels and reloads it. Spills are exact (no rounding),
//     so the sum is still the reference sum.
//   - worker partitioning (par.DoAligned) hands each output row to
//     exactly one goroutine; boundaries change who computes a row,
//     never the operations that produce it.
//
// There are no value-dependent skips: 0·NaN and 0·Inf reach the
// accumulator, so the kernels are IEEE-consistent with the reference by
// construction (the historical naive kernels dropped those terms).

// Register-tile and cache-panel geometry.
//
// The 4×2 register tile is sized for amd64's sixteen float registers:
// eight independent accumulator chains are enough to hide scalar add
// latency, and eight accumulators plus six loaded operands still fit
// without spilling (a 4×4 tile's sixteen accumulators measurably spill
// to the stack every iteration). Panels: a micro-kernel call streams
// mr+nr rows of length ≤ kcPanel — 6·256·8 B ≈ 12 KiB, inside L1d —
// while an ncPanel×kcPanel slab of b (256 KiB) stays L2-resident across
// the mcPanel-row sweep of a.
const (
	mr       = 4   // register-tile output rows
	nr       = 2   // register-tile output cols
	mcPanel  = 64  // rows of a per L2 block
	ncPanel  = 128 // rows of b (output cols) per panel
	kcPanel  = 256 // reduction slice per accumulator spill
	rankFast = 64  // inner-dim bound for the serving fast path
)

// mulTDot computes out[lo:hi, :] = a[:, :rank] · (b[:, :rank])ᵀ for
// row-major a and b sharing a column stride, writing rows [lo, hi) of
// out (stride b.Rows). Serving shapes — rank ≤ rankFast and few enough
// b rows for one panel — take the register-tiled loop directly; larger
// problems run the same micro-kernels under MC×NC×KC panel blocking.
func mulTDot(out, a, b *Mat, rank, lo, hi int) {
	if useDotAsm() {
		mulTDotAsm(out, a, b, rank, lo, hi)
		return
	}
	m := b.Rows
	if rank <= kcPanel && m <= ncPanel {
		// Fast path: b[:, :rank] is at most 128·256·8 B and in practice
		// (rank ≤ 64, |Q| ≤ ncPanel) a few KiB — L1/L2-resident for the
		// whole sweep. Single k block, so accumulators start at zero and
		// out needs no pre-pass.
		mulTBlock(out, a, b, lo, hi, 0, m, 0, rank, true)
		return
	}
	// General path: k is cut into kcPanel slices with exact accumulator
	// spills into out, so out rows must start at zero.
	for i := lo; i < hi; i++ {
		orow := out.Data[i*m : (i+1)*m]
		for j := range orow {
			orow[j] = 0
		}
	}
	for jlo := 0; jlo < m; jlo += ncPanel {
		jhi := min(jlo+ncPanel, m)
		for ilo := lo; ilo < hi; ilo += mcPanel {
			ihi := min(ilo+mcPanel, hi)
			for klo := 0; klo < rank; klo += kcPanel {
				khi := min(klo+kcPanel, rank)
				mulTBlock(out, a, b, ilo, ihi, jlo, jhi, klo, khi, false)
			}
		}
	}
}

// mulTBlock runs the register-tiled micro-kernels over the output block
// [ilo, ihi) × [jlo, jhi), reducing over k ∈ [klo, khi). zero selects
// zero-initialised accumulators (single-block reductions) versus
// accumulate-into-out (k-panelled reductions over a pre-zeroed out).
func mulTBlock(out, a, b *Mat, ilo, ihi, jlo, jhi, klo, khi int, zero bool) {
	an, bn, m := a.Cols, b.Cols, b.Rows
	i := ilo
	for ; i+mr <= ihi; i += mr {
		a0 := a.Data[(i+0)*an+klo : (i+0)*an+khi]
		a1 := a.Data[(i+1)*an+klo : (i+1)*an+khi]
		a2 := a.Data[(i+2)*an+klo : (i+2)*an+khi]
		a3 := a.Data[(i+3)*an+klo : (i+3)*an+khi]
		o0 := out.Data[(i+0)*m : (i+0)*m+m]
		o1 := out.Data[(i+1)*m : (i+1)*m+m]
		o2 := out.Data[(i+2)*m : (i+2)*m+m]
		o3 := out.Data[(i+3)*m : (i+3)*m+m]
		j := jlo
		for ; j+nr <= jhi; j += nr {
			b0 := b.Data[(j+0)*bn+klo : (j+0)*bn+khi]
			b1 := b.Data[(j+1)*bn+klo : (j+1)*bn+khi]
			dotTile4x2(o0, o1, o2, o3, j, a0, a1, a2, a3, b0, b1, zero)
		}
		for ; j < jhi; j++ {
			bj := b.Data[j*bn+klo : j*bn+khi]
			dotTile4x1(o0, o1, o2, o3, j, a0, a1, a2, a3, bj, zero)
		}
	}
	// Row edge: up to mr-1 leftover rows, one row of dots at a time.
	for ; i < ihi; i++ {
		ai := a.Data[i*an+klo : i*an+khi]
		oi := out.Data[i*m : (i+1)*m]
		dotRow(oi, jlo, jhi, ai, b, klo, khi, zero)
	}
}

// dotTile4x2 accumulates the 4×2 output tile o{0..3}[j, j+2) from four
// a rows and two b rows over their (equal-length) k slices. Eight
// independent register accumulators advance in ascending-k lockstep —
// enough chains to hide scalar add latency while accumulators plus the
// six loaded operands stay inside amd64's sixteen float registers (a
// 4×4 tile measurably spills). The k loop is unrolled by two; the
// second step's adds are sequentially dependent on the first's per
// accumulator, so per-element order is untouched.
func dotTile4x2(o0, o1, o2, o3 []float64, j int, a0, a1, a2, a3, b0, b1 []float64, zero bool) {
	k := len(a0)
	a1, a2, a3 = a1[:k], a2[:k], a3[:k]
	b0, b1 = b0[:k], b1[:k]
	var s00, s01 float64
	var s10, s11 float64
	var s20, s21 float64
	var s30, s31 float64
	if !zero {
		s00, s01 = o0[j], o0[j+1]
		s10, s11 = o1[j], o1[j+1]
		s20, s21 = o2[j], o2[j+1]
		s30, s31 = o3[j], o3[j+1]
	}
	p := 0
	for ; p+2 <= k; p += 2 {
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		bv0, bv1 := b0[p], b1[p]
		s00 += av0 * bv0
		s10 += av1 * bv0
		s20 += av2 * bv0
		s30 += av3 * bv0
		s01 += av0 * bv1
		s11 += av1 * bv1
		s21 += av2 * bv1
		s31 += av3 * bv1
		av0, av1, av2, av3 = a0[p+1], a1[p+1], a2[p+1], a3[p+1]
		bv0, bv1 = b0[p+1], b1[p+1]
		s00 += av0 * bv0
		s10 += av1 * bv0
		s20 += av2 * bv0
		s30 += av3 * bv0
		s01 += av0 * bv1
		s11 += av1 * bv1
		s21 += av2 * bv1
		s31 += av3 * bv1
	}
	if p < k {
		av0, av1, av2, av3 := a0[p], a1[p], a2[p], a3[p]
		bv0, bv1 := b0[p], b1[p]
		s00 += av0 * bv0
		s10 += av1 * bv0
		s20 += av2 * bv0
		s30 += av3 * bv0
		s01 += av0 * bv1
		s11 += av1 * bv1
		s21 += av2 * bv1
		s31 += av3 * bv1
	}
	o0[j], o0[j+1] = s00, s01
	o1[j], o1[j+1] = s10, s11
	o2[j], o2[j+1] = s20, s21
	o3[j], o3[j+1] = s30, s31
}

// dotTile4x1 is the column-edge micro-kernel: four rows of a against a
// single b row.
func dotTile4x1(o0, o1, o2, o3 []float64, j int, a0, a1, a2, a3, bj []float64, zero bool) {
	k := len(a0)
	a1, a2, a3, bj = a1[:k], a2[:k], a3[:k], bj[:k]
	var s0, s1, s2, s3 float64
	if !zero {
		s0, s1, s2, s3 = o0[j], o1[j], o2[j], o3[j]
	}
	for p := 0; p < k; p++ {
		bv := bj[p]
		s0 += a0[p] * bv
		s1 += a1[p] * bv
		s2 += a2[p] * bv
		s3 += a3[p] * bv
	}
	o0[j], o1[j], o2[j], o3[j] = s0, s1, s2, s3
}

// dotRow is the row-edge kernel: one a row dotted against b rows
// [jlo, jhi), four at a time for load reuse, over k ∈ [klo, khi).
func dotRow(oi []float64, jlo, jhi int, ai []float64, b *Mat, klo, khi int, zero bool) {
	bn := b.Cols
	j := jlo
	for ; j+4 <= jhi; j += 4 {
		b0 := b.Data[(j+0)*bn+klo : (j+0)*bn+khi]
		b1 := b.Data[(j+1)*bn+klo : (j+1)*bn+khi]
		b2 := b.Data[(j+2)*bn+klo : (j+2)*bn+khi]
		b3 := b.Data[(j+3)*bn+klo : (j+3)*bn+khi]
		k := len(ai)
		b0, b1, b2, b3 = b0[:k], b1[:k], b2[:k], b3[:k]
		var s0, s1, s2, s3 float64
		if !zero {
			s0, s1, s2, s3 = oi[j], oi[j+1], oi[j+2], oi[j+3]
		}
		for p := 0; p < k; p++ {
			av := ai[p]
			s0 += av * b0[p]
			s1 += av * b1[p]
			s2 += av * b2[p]
			s3 += av * b3[p]
		}
		oi[j], oi[j+1], oi[j+2], oi[j+3] = s0, s1, s2, s3
	}
	for ; j < jhi; j++ {
		bj := b.Data[j*bn+klo : j*bn+khi]
		bj = bj[:len(ai)]
		var s float64
		if !zero {
			s = oi[j]
		}
		for p, av := range ai {
			s += av * bj[p]
		}
		oi[j] = s
	}
}

// tmulKBlock picks the k-panel length for the TMul tile sweep so one
// panel of a plus b rows (kb·(ac+bc) doubles) stays L1-resident while
// every register tile traverses it. Shape-only — never a function of the
// worker count — so the (exact) spill schedule is deterministic.
func tmulKBlock(ac, bc int) int {
	const l1Doubles = 4096 // 32 KiB of float64
	kb := l1Doubles / max(ac+bc, 1)
	return max(kb, 64)
}

// tmulRangeTiled accumulates rows [klo, khi) of the shared dimension of
// aᵀ·b into dst (a.Cols×b.Cols row-major; callers pass zeroed or
// partially-accumulated buffers — contributions are added). Register
// tiles of 4×4 output elements traverse k panels; each element's
// accumulator is spilled exactly between panels, so per-element
// accumulation stays in ascending-k order — bitwise the reference
// scatter loop's order.
func tmulRangeTiled(dst []float64, a, b *Mat, klo, khi int) {
	ac, bc := a.Cols, b.Cols
	kb := tmulKBlock(ac, bc)
	asm := useDotAsm()
	for kplo := klo; kplo < khi; kplo += kb {
		kphi := min(kplo+kb, khi)
		i := 0
		for ; i+mr <= ac; i += mr {
			j := 0
			for ; j+nr <= bc; j += nr {
				if asm {
					tmulKernel4x2(
						&dst[(i+0)*bc+j], &dst[(i+1)*bc+j], &dst[(i+2)*bc+j], &dst[(i+3)*bc+j],
						&a.Data[kplo*ac+i], &b.Data[kplo*bc+j],
						int64(ac), int64(bc), int64(kphi-kplo))
				} else {
					tmulTile4x2(dst, a, b, i, j, kplo, kphi)
				}
			}
			for ; j < bc; j++ {
				tmulTile4x1(dst, a, b, i, j, kplo, kphi)
			}
		}
		for ; i < ac; i++ {
			tmulTileRow(dst, a, b, i, kplo, kphi)
		}
	}
}

// tmulTile4x2 accumulates dst[i..i+4)[j..j+2) += Σ_k a[k][i..i+4) ⊗
// b[k][j..j+2) over k ∈ [klo, khi), all eight accumulators in registers,
// loads contiguous within each k row.
func tmulTile4x2(dst []float64, a, b *Mat, i, j, klo, khi int) {
	ac, bc := a.Cols, b.Cols
	d0 := dst[(i+0)*bc : (i+0)*bc+bc]
	d1 := dst[(i+1)*bc : (i+1)*bc+bc]
	d2 := dst[(i+2)*bc : (i+2)*bc+bc]
	d3 := dst[(i+3)*bc : (i+3)*bc+bc]
	s00, s01 := d0[j], d0[j+1]
	s10, s11 := d1[j], d1[j+1]
	s20, s21 := d2[j], d2[j+1]
	s30, s31 := d3[j], d3[j+1]
	for k := klo; k < khi; k++ {
		arow := a.Data[k*ac+i : k*ac+i+4]
		brow := b.Data[k*bc+j : k*bc+j+2]
		av0, av1, av2, av3 := arow[0], arow[1], arow[2], arow[3]
		bv0, bv1 := brow[0], brow[1]
		s00 += av0 * bv0
		s10 += av1 * bv0
		s20 += av2 * bv0
		s30 += av3 * bv0
		s01 += av0 * bv1
		s11 += av1 * bv1
		s21 += av2 * bv1
		s31 += av3 * bv1
	}
	d0[j], d0[j+1] = s00, s01
	d1[j], d1[j+1] = s10, s11
	d2[j], d2[j+1] = s20, s21
	d3[j], d3[j+1] = s30, s31
}

// tmulTile4x1 is tmulTile4x4's column edge: four a columns, one b column.
func tmulTile4x1(dst []float64, a, b *Mat, i, j, klo, khi int) {
	ac, bc := a.Cols, b.Cols
	s0 := dst[(i+0)*bc+j]
	s1 := dst[(i+1)*bc+j]
	s2 := dst[(i+2)*bc+j]
	s3 := dst[(i+3)*bc+j]
	for k := klo; k < khi; k++ {
		arow := a.Data[k*ac+i : k*ac+i+4]
		bv := b.Data[k*bc+j]
		s0 += arow[0] * bv
		s1 += arow[1] * bv
		s2 += arow[2] * bv
		s3 += arow[3] * bv
	}
	dst[(i+0)*bc+j] = s0
	dst[(i+1)*bc+j] = s1
	dst[(i+2)*bc+j] = s2
	dst[(i+3)*bc+j] = s3
}

// tmulTileRow is tmulTile4x4's row edge: one a column against all b
// columns, the scatter loop of the reference restricted to that column.
func tmulTileRow(dst []float64, a, b *Mat, i, klo, khi int) {
	ac, bc := a.Cols, b.Cols
	drow := dst[i*bc : (i+1)*bc]
	for k := klo; k < khi; k++ {
		av := a.Data[k*ac+i]
		brow := b.Data[k*bc : (k+1)*bc]
		for j, bv := range brow {
			drow[j] += av * bv
		}
	}
}

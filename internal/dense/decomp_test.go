package dense

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func checkOrthonormalCols(t *testing.T, q *Mat, tol float64) {
	t.Helper()
	g := TMul(q, q)
	if !g.Equal(Eye(q.Cols), tol) {
		t.Fatalf("columns not orthonormal: QᵀQ deviates by %g", g.Sub(Eye(q.Cols)).MaxAbs())
	}
}

func TestQRThinReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range [][2]int{{1, 1}, {5, 3}, {12, 12}, {40, 7}, {100, 25}} {
		a := randMat(rng, dims[0], dims[1])
		q, r, err := QRThin(a)
		if err != nil {
			t.Fatalf("QRThin(%v): %v", dims, err)
		}
		checkOrthonormalCols(t, q, 1e-10)
		if !Mul(q, r).Equal(a, 1e-10) {
			t.Fatalf("QR != A at dims %v", dims)
		}
		// R upper triangular.
		for i := 0; i < r.Rows; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRThinWideRejected(t *testing.T) {
	if _, _, err := QRThin(NewMat(2, 5)); !errors.Is(err, ErrShape) {
		t.Fatalf("QRThin wide: err = %v, want ErrShape", err)
	}
}

func TestQRThinZeroColumn(t *testing.T) {
	a := NewMat(4, 2)
	a.Set(0, 1, 3) // first column all zeros
	q, r, err := QRThin(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(q, r).Equal(a, 1e-12) {
		t.Fatal("QR != A with zero column")
	}
}

func TestOrthonormalizeRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	// Build a 20x4 matrix of rank 2: two independent columns duplicated.
	base := randMat(rng, 20, 2)
	a := NewMat(20, 4)
	for i := 0; i < 20; i++ {
		a.Set(i, 0, base.At(i, 0))
		a.Set(i, 1, base.At(i, 1))
		a.Set(i, 2, base.At(i, 0)*2)
		a.Set(i, 3, base.At(i, 1)-base.At(i, 0))
	}
	q, err := Orthonormalize(a, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	checkOrthonormalCols(t, q, 1e-8)
}

func TestSVDJacobiReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, dims := range [][2]int{{1, 1}, {6, 4}, {10, 10}, {50, 8}} {
		a := randMat(rng, dims[0], dims[1])
		res, err := SVDJacobi(a)
		if err != nil {
			t.Fatalf("SVDJacobi(%v): %v", dims, err)
		}
		checkOrthonormalCols(t, res.U, 1e-9)
		checkOrthonormalCols(t, res.V, 1e-9)
		for i := 1; i < len(res.S); i++ {
			if res.S[i] > res.S[i-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", res.S)
			}
		}
		recon := Mul(Mul(res.U, Diag(res.S)), res.V.T())
		if !recon.Equal(a, 1e-9) {
			t.Fatalf("U S Vᵀ != A at dims %v (maxdiff %g)", dims, recon.Sub(a).MaxAbs())
		}
	}
}

func TestSVDJacobiKnownValues(t *testing.T) {
	// diag(3, 2, 1) has those exact singular values.
	res, err := SVDJacobi(Diag([]float64{1, 3, 2}))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, 1}
	for i, s := range res.S {
		if math.Abs(s-want[i]) > 1e-12 {
			t.Fatalf("S = %v, want %v", res.S, want)
		}
	}
}

func TestSVDJacobiRankDeficient(t *testing.T) {
	// Rank-1 matrix: outer product.
	a := NewMat(5, 3)
	u := []float64{1, 2, 3, 4, 5}
	v := []float64{1, -1, 2}
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*v[j])
		}
	}
	res, err := SVDJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	wantS1 := Norm2(u) * Norm2(v)
	if math.Abs(res.S[0]-wantS1) > 1e-10 {
		t.Fatalf("S[0] = %v, want %v", res.S[0], wantS1)
	}
	if res.S[1] > 1e-10 || res.S[2] > 1e-10 {
		t.Fatalf("tail singular values not ~0: %v", res.S)
	}
	recon := Mul(Mul(res.U, Diag(res.S)), res.V.T())
	if !recon.Equal(a, 1e-9) {
		t.Fatal("rank-1 reconstruction failed")
	}
}

func TestSVDJacobiWideRejected(t *testing.T) {
	if _, err := SVDJacobi(NewMat(2, 5)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestSymEig(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	b := randMat(rng, 8, 8)
	a := Mul(b, b.T()) // SPD
	w, v, err := SymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	checkOrthonormalCols(t, v, 1e-9)
	recon := Mul(Mul(v, Diag(w)), v.T())
	if !recon.Equal(a, 1e-8) {
		t.Fatalf("V W Vᵀ != A (maxdiff %g)", recon.Sub(a).MaxAbs())
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1]+1e-12 {
			t.Fatalf("eigenvalues not sorted: %v", w)
		}
	}
	for _, lambda := range w {
		if lambda < -1e-9 {
			t.Fatalf("SPD matrix produced negative eigenvalue %v", lambda)
		}
	}
}

func TestSymEigNonSquareRejected(t *testing.T) {
	if _, _, err := SymEig(NewMat(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestLUSolveAndInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMat(rng, 9, 9)
	a.AddEye(3) // keep it comfortably nonsingular
	f, err := Factorize(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b := MulVec(a, x)
	got, err := f.SolveVec(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-9 {
			t.Fatalf("SolveVec[%d] = %v, want %v", i, got[i], x[i])
		}
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	if !Mul(a, inv).Equal(Eye(9), 1e-9) {
		t.Fatal("A * A⁻¹ != I")
	}
}

func TestFactorizeSingular(t *testing.T) {
	a := NewMat(3, 3) // all zeros
	if _, err := Factorize(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := Factorize(NewMat(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestKronKnown(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatFrom(1, 2, []float64{0, 1})
	got := Kron(a, b)
	want := NewMatFrom(2, 4, []float64{
		0, 1, 0, 2,
		0, 3, 0, 4,
	})
	if !got.Equal(want, 0) {
		t.Fatalf("Kron = \n%v want \n%v", got, want)
	}
	if KronBytes(2, 2, 1, 2) != int64(len(got.Data))*8 {
		t.Fatal("KronBytes mismatch")
	}
}

// Property (Theorem 3.1's underpinnings): the mixed-product property
// (A⊗B)(C⊗D) = (AC)⊗(BD), and (V⊗V)ᵀ = Vᵀ⊗Vᵀ.
func TestKronMixedProductProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q, s := 1+r.Intn(4), 1+r.Intn(4), 1+r.Intn(4)
		u, w := 1+r.Intn(4), 1+r.Intn(4)
		a, c := randMat(r, p, q), randMat(r, q, s)
		b, d := randMat(r, u, w), randMat(r, w, u)
		lhs := Mul(Kron(a, b), Kron(c, d))
		rhs := Kron(Mul(a, c), Mul(b, d))
		return lhs.Equal(rhs, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	g := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randMat(r, 1+r.Intn(5), 1+r.Intn(5))
		return Kron(v, v).T().Equal(Kron(v.T(), v.T()), 1e-12)
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property (Theorem 3.4's underpinnings): (A⊗B)vec(X) = vec(B X Aᵀ).
func TestKronVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p, q := 1+r.Intn(5), 1+r.Intn(5)
		s, u := 1+r.Intn(5), 1+r.Intn(5)
		a, b := randMat(r, p, q), randMat(r, s, u)
		x := randMat(r, u, q)
		lhs := MulVec(Kron(a, b), Vec(x))
		rhs := Vec(Mul(Mul(b, x), a.T()))
		if len(lhs) != len(rhs) {
			return false
		}
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestVecUnvecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	m := randMat(rng, 4, 6)
	if got := Unvec(Vec(m), 4, 6); !got.Equal(m, 0) {
		t.Fatal("Unvec(Vec(m)) != m")
	}
}

func TestVecEye(t *testing.T) {
	v := VecEye(3)
	want := Vec(Eye(3))
	for i := range v {
		if v[i] != want[i] {
			t.Fatalf("VecEye mismatch at %d", i)
		}
	}
}

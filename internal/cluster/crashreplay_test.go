//go:build cluster && faultinject

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"csrplus"

	"csrplus/internal/graph"
	"csrplus/internal/ingest"
)

const replayRank = 4

// replaySeeds is the fixed seed matrix of the crash-replay run;
// CHAOS_SEED narrows it, matching the chaos suite's convention.
var replaySeeds = []int64{7, 11, 13}

// freshStream returns k edges absent from g, scanned deterministically.
func freshStream(t *testing.T, g *graph.Graph, k int) []ingest.Edge {
	t.Helper()
	out := make([]ingest.Edge, 0, k)
	n := g.N()
	for u := 0; u < n && len(out) < k; u++ {
		for v := n - 1; v >= 0 && len(out) < k; v-- {
			if u != v && !g.HasEdge(u, v) {
				out = append(out, ingest.Edge{Src: u, Dst: v})
			}
		}
	}
	if len(out) < k {
		t.Fatalf("cluster graph too dense to pick %d fresh edges", k)
	}
	return out
}

func postEdge(url, token string, payload []byte) (int, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, url+"/admin/edges", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

func edgePayload(edges []ingest.Edge) []byte {
	type wireEdge struct {
		Src int `json:"src"`
		Dst int `json:"dst"`
	}
	var req struct {
		Edges []wireEdge `json:"edges"`
	}
	for _, e := range edges {
		req.Edges = append(req.Edges, wireEdge{Src: e.Src, Dst: e.Dst})
	}
	payload, _ := json.Marshal(req)
	return payload
}

// TestCrashReplayConvergesUnderWALFaults is the ingestion durability
// acceptance run: a real csrserver ingests a fresh-edge stream while its
// WAL write and fsync paths are fault-injected via the environment, gets
// kill -9'd mid-ingest, and must come back with every acknowledged edge
// intact and zero corruption. The client then re-sends the full stream
// (at-least-once delivery) and the live graph must converge to exactly
// base + stream.
func TestCrashReplayConvergesUnderWALFaults(t *testing.T) {
	bin := os.Getenv("CSRSERVER_BIN")
	if bin == "" {
		t.Skip("CSRSERVER_BIN not set; build cmd/csrserver -tags faultinject and point CSRSERVER_BIN at it")
	}
	logDir := os.Getenv("CLUSTER_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	seedSet := replaySeeds
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q is not an integer: %v", s, err)
		}
		seedSet = []int64{v}
	}
	for _, seed := range seedSet {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			crashReplayRun(t, &harness{t: t, bin: bin, logDir: logDir}, seed)
		})
	}
}

func crashReplayRun(t *testing.T, h *harness, seed int64) {
	tmp := t.TempDir()
	edges := edgeList()
	edgePath := filepath.Join(tmp, "edges.txt")
	if err := os.WriteFile(edgePath, edges, 0o644); err != nil {
		t.Fatal(err)
	}
	walDir := filepath.Join(tmp, "wal")
	g, err := csrplus.ReadGraph(bytes.NewReader(edges), clusterN)
	if err != nil {
		t.Fatal(err)
	}
	stream := freshStream(t, g.CoreGraph(), 30)
	ports := freePorts(t, 2)

	serverArgs := func(port int) []string {
		return []string{
			"-graph", edgePath, "-n", fmt.Sprint(clusterN),
			"-r", fmt.Sprint(replayRank), "-c", fmt.Sprint(clusterC),
			"-addr", fmt.Sprintf("127.0.0.1:%d", port),
			"-admintoken", adminToken,
			"-waldir", walDir,
		}
	}

	// Phase 1: ingest under injected WAL faults, then kill -9 mid-stream.
	p1 := h.spawnEnv(fmt.Sprintf("ingest-seed%d", seed), []string{
		"CSRSERVER_FAULTS=ingest/wal.append:errprob=0.05,tornprob=0.1,tornbytes=11;ingest/wal.fsync:errprob=0.1",
		fmt.Sprintf("CSRSERVER_FAULT_SEED=%d", seed),
	}, serverArgs(ports[0])...)
	url1 := fmt.Sprintf("http://127.0.0.1:%d", ports[0])
	waitReady(t, url1, 60*time.Second)

	var mu sync.Mutex
	var acked []ingest.Edge
	posted := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, e := range stream {
			code, body, err := postEdge(url1, adminToken, edgePayload([]ingest.Edge{e}))
			mu.Lock()
			posted++
			if err == nil && code == http.StatusOK {
				var resp struct {
					Seq uint64 `json:"seq"`
				}
				if json.Unmarshal(body, &resp) == nil && resp.Seq > 0 {
					acked = append(acked, e)
				}
			}
			mu.Unlock()
			// A short gap keeps the stream in flight long enough for the
			// kill below to land mid-ingest.
			time.Sleep(5 * time.Millisecond)
		}
	}()
	for {
		mu.Lock()
		n := posted
		mu.Unlock()
		if n >= 12 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := p1.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	_, _ = p1.cmd.Process.Wait()
	<-done
	mu.Lock()
	nAcked := len(acked)
	mu.Unlock()
	t.Logf("seed %d: %d/%d edges acknowledged before kill -9", seed, nAcked, len(stream))

	// The log a kill -9 leaves must replay: no corruption, and every
	// acknowledged edge present. (This replay also truncates any torn
	// tail, exactly as the restarted server's boot would.)
	info, err := ingest.Inspect(walDir)
	if err != nil {
		t.Fatalf("inspecting the WAL after kill -9: %v", err)
	}
	if info.Corrupt != "" {
		t.Fatalf("WAL corrupt after kill -9: %s", info.Corrupt)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: replayRank, Damping: clusterC})
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("CSR+ engine without a core index")
	}
	svc, err := ingest.NewService(g.CoreGraph(), ix, ingest.Config{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Recover(); err != nil {
		t.Fatalf("replaying the WAL after kill -9: %v", err)
	}
	cut, _, _, err := svc.Cut()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range acked {
		if !cut.HasEdge(e.Src, e.Dst) {
			t.Fatalf("acknowledged edge (%d, %d) lost across kill -9", e.Src, e.Dst)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: restart over the same log with faults disarmed; the boot
	// replay must bring the server ready, and re-sending the full stream
	// must converge (replayed and re-sent duplicates are no-ops).
	p2 := h.spawn(fmt.Sprintf("recover-seed%d", seed), serverArgs(ports[1])...)
	url2 := fmt.Sprintf("http://127.0.0.1:%d", ports[1])
	waitReady(t, url2, 60*time.Second)
	code, body, err := postEdge(url2, adminToken, edgePayload(stream))
	if err != nil || code != http.StatusOK {
		t.Fatalf("re-sending the stream after restart: code %d, err %v, body %s", code, err, body)
	}
	var stats struct {
		Ingest struct {
			LiveEdges int64  `json:"live_edges"`
			LastSeq   uint64 `json:"last_seq"`
		} `json:"ingest"`
	}
	if code := getJSON(t, url2+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("/stats after convergence: %d", code)
	}
	if want := g.M() + int64(len(stream)); stats.Ingest.LiveEdges != want {
		t.Fatalf("live edges %d after full re-send, want %d (duplicates must collapse)", stats.Ingest.LiveEdges, want)
	}
	p2.kill()

	// Final sweep: the log is clean end to end, and a fresh replay holds
	// exactly base + stream.
	if info, err = ingest.Inspect(walDir); err != nil {
		t.Fatal(err)
	}
	if info.Corrupt != "" {
		t.Fatalf("WAL corrupt after convergence: %s", info.Corrupt)
	}
	svc2, err := ingest.NewService(g.CoreGraph(), ix, ingest.Config{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc2.Recover(); err != nil {
		t.Fatalf("final replay: %v", err)
	}
	final, _, _, err := svc2.Cut()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range stream {
		if !final.HasEdge(e.Src, e.Dst) {
			t.Fatalf("stream edge (%d, %d) missing after convergence", e.Src, e.Dst)
		}
	}
	if want := g.M() + int64(len(stream)); final.M() != want {
		t.Fatalf("final edge count %d, want %d", final.M(), want)
	}
	if err := svc2.Close(); err != nil {
		t.Fatal(err)
	}
}

//go:build cluster

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"csrplus"

	"csrplus/internal/core"
	"csrplus/internal/shard"
)

const (
	clusterN    = 151
	clusterRank = 5
	clusterC    = 0.6
	workerCount = 4
	adminToken  = "cluster-harness"
)

// edgeList builds a deterministic connected graph and renders it as the
// SNAP-style edge list the -graph flag parses. The same bytes feed both
// the monolithic server (via its file loader) and the in-process index
// the shard snapshots are cut from, so the two deployments start from
// the identical graph object.
func edgeList() []byte {
	var buf bytes.Buffer
	state := uint64(99)*2654435761 + 1
	next := func(m int) int {
		state = state*6364136223846793005 + 1442695040888963407
		return int((state >> 33) % uint64(m))
	}
	for i := 0; i < clusterN; i++ {
		fmt.Fprintf(&buf, "%d %d\n", i, (i+1)%clusterN)
		for e := 0; e < 3; e++ {
			fmt.Fprintf(&buf, "%d %d\n", next(clusterN), next(clusterN))
		}
	}
	return buf.Bytes()
}

// proc is one spawned csrserver with its log capture.
type proc struct {
	cmd     *exec.Cmd
	logPath string
}

func (p *proc) kill() {
	if p.cmd.Process != nil {
		_ = p.cmd.Process.Kill()
		_, _ = p.cmd.Process.Wait()
	}
}

type harness struct {
	t       *testing.T
	bin     string
	logDir  string
	workers []*proc
	router  *proc
	mono    *proc

	routerURL string
	monoURL   string
	plan      shard.Plan
}

func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	listeners := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range listeners {
		ln.Close()
	}
	return ports
}

func (h *harness) spawn(name string, args ...string) *proc {
	return h.spawnEnv(name, nil, args...)
}

// spawnEnv spawns with extra environment entries appended to the
// parent's — how the crash-replay harness arms fault injection inside a
// faultinject-built csrserver (CSRSERVER_FAULTS/CSRSERVER_FAULT_SEED).
func (h *harness) spawnEnv(name string, env []string, args ...string) *proc {
	h.t.Helper()
	logPath := filepath.Join(h.logDir, name+".log")
	logFile, err := os.Create(logPath)
	if err != nil {
		h.t.Fatal(err)
	}
	cmd := exec.Command(h.bin, args...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	cmd.Stdout = logFile
	cmd.Stderr = logFile
	if err := cmd.Start(); err != nil {
		h.t.Fatalf("starting %s: %v", name, err)
	}
	p := &proc{cmd: cmd, logPath: logPath}
	h.t.Cleanup(func() {
		p.kill()
		logFile.Close()
		if h.t.Failed() {
			data, _ := os.ReadFile(logPath)
			if len(data) > 4096 {
				data = data[len(data)-4096:]
			}
			h.t.Logf("---- %s log tail ----\n%s", name, data)
		}
	})
	return p
}

func waitReady(t *testing.T, url string, deadline time.Duration) {
	t.Helper()
	end := time.Now().Add(deadline)
	var last string
	for time.Now().Before(end) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			last = fmt.Sprintf("%d %s", resp.StatusCode, body)
		} else {
			last = err.Error()
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("%s never became ready: %s", url, last)
}

// bootCluster writes the graph + per-shard snapshots, then spawns
// 4 shard workers, a wire router over them, and a monolithic csrserver
// over the same edge list.
func bootCluster(t *testing.T) *harness {
	bin := os.Getenv("CSRSERVER_BIN")
	if bin == "" {
		t.Skip("CSRSERVER_BIN not set; build cmd/csrserver and point CSRSERVER_BIN at it")
	}
	logDir := os.Getenv("CLUSTER_LOG_DIR")
	if logDir == "" {
		logDir = t.TempDir()
	} else if err := os.MkdirAll(logDir, 0o755); err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, bin: bin, logDir: logDir}

	tmp := t.TempDir()
	edges := edgeList()
	edgePath := filepath.Join(tmp, "edges.txt")
	if err := os.WriteFile(edgePath, edges, 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := csrplus.ReadGraph(bytes.NewReader(edges), clusterN)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: clusterRank, Damping: clusterC})
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("CSR+ engine without a core index")
	}
	plan, err := shard.SplitEven(ix.N(), workerCount)
	if err != nil {
		t.Fatal(err)
	}
	h.plan = plan
	snapRoot := filepath.Join(tmp, "snapshots")
	for s := 0; s < workerCount; s++ {
		lo, hi := plan.Range(s)
		sh, err := ix.Shard(lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := core.WriteShardSnapshot(core.ShardDir(snapRoot, s), sh); err != nil {
			t.Fatal(err)
		}
	}

	ports := freePorts(t, workerCount+2)
	workerAddrs := make([]string, workerCount)
	for s := 0; s < workerCount; s++ {
		addr := fmt.Sprintf("127.0.0.1:%d", ports[s])
		workerAddrs[s] = addr
		h.workers = append(h.workers, h.spawn(fmt.Sprintf("worker-%d", s),
			"-shardworker", fmt.Sprint(s),
			"-snapshots", snapRoot,
			"-addr", addr,
			"-admintoken", adminToken,
		))
	}
	// The router dials every worker at boot and refuses to start while
	// one is unreachable; bring the workers up first.
	for _, addr := range workerAddrs {
		waitReady(t, "http://"+addr, 60*time.Second)
	}
	routerAddr := fmt.Sprintf("127.0.0.1:%d", ports[workerCount])
	h.routerURL = "http://" + routerAddr
	h.router = h.spawn("router",
		"-shardaddrs", strings.Join(workerAddrs, ","),
		"-addr", routerAddr,
		"-admintoken", adminToken,
	)
	monoAddr := fmt.Sprintf("127.0.0.1:%d", ports[workerCount+1])
	h.monoURL = "http://" + monoAddr
	h.mono = h.spawn("monolithic",
		"-graph", edgePath,
		"-n", fmt.Sprint(clusterN),
		"-r", fmt.Sprint(clusterRank),
		"-c", fmt.Sprint(clusterC),
		"-addr", monoAddr,
	)

	waitReady(t, h.routerURL, 60*time.Second)
	waitReady(t, h.monoURL, 60*time.Second)
	return h
}

type topkBody struct {
	Matches []struct {
		Node  int     `json:"node"`
		Score float64 `json:"score"`
	} `json:"matches"`
	Degraded *struct {
		MissingShards int     `json:"missing_shards"`
		ErrorBound    float64 `json:"error_bound"`
	} `json:"degraded"`
}

type pairsBody struct {
	Pairs []struct {
		Query  int     `json:"query"`
		Target int     `json:"target"`
		Score  float64 `json:"score"`
	} `json:"pairs"`
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, data, err)
		}
	}
	return resp.StatusCode
}

// TestClusterMatchesMonolithicAndSurvivesWorkerKill is the wire-split
// acceptance run: a real 4-worker cluster answers /topk and /similarity
// bitwise-identically to a monolithic csrserver over the same graph, and
// keeps serving tagged degraded answers after one worker is killed.
func TestClusterMatchesMonolithicAndSurvivesWorkerKill(t *testing.T) {
	h := bootCluster(t)
	querySets := []string{"7", "0", "13,42,99", "3,50,50,120"}
	for _, nodes := range querySets {
		for _, k := range []int{1, 4, 10} {
			path := fmt.Sprintf("/topk?nodes=%s&k=%d", nodes, k)
			var got, want topkBody
			if code := getJSON(t, h.routerURL+path, &got); code != http.StatusOK {
				t.Fatalf("router %s: %d", path, code)
			}
			if code := getJSON(t, h.monoURL+path, &want); code != http.StatusOK {
				t.Fatalf("monolithic %s: %d", path, code)
			}
			if got.Degraded != nil {
				t.Fatalf("healthy cluster tagged degraded on %s: %+v", path, got.Degraded)
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("%s: router %d matches, monolithic %d", path, len(got.Matches), len(want.Matches))
			}
			for i := range want.Matches {
				if got.Matches[i].Node != want.Matches[i].Node ||
					math.Float64bits(got.Matches[i].Score) != math.Float64bits(want.Matches[i].Score) {
					t.Fatalf("%s match %d: router (%d, %x), monolithic (%d, %x)", path, i,
						got.Matches[i].Node, math.Float64bits(got.Matches[i].Score),
						want.Matches[i].Node, math.Float64bits(want.Matches[i].Score))
				}
			}
		}
		simPath := fmt.Sprintf("/similarity?nodes=%s&targets=0,17,88,150", nodes)
		var got, want pairsBody
		if code := getJSON(t, h.routerURL+simPath, &got); code != http.StatusOK {
			t.Fatalf("router %s: %d", simPath, code)
		}
		if code := getJSON(t, h.monoURL+simPath, &want); code != http.StatusOK {
			t.Fatalf("monolithic %s: %d", simPath, code)
		}
		if len(got.Pairs) != len(want.Pairs) {
			t.Fatalf("%s: router %d pairs, monolithic %d", simPath, len(got.Pairs), len(want.Pairs))
		}
		for i := range want.Pairs {
			if got.Pairs[i] != want.Pairs[i] {
				t.Fatalf("%s pair %d: router %+v, monolithic %+v", simPath, i, got.Pairs[i], want.Pairs[i])
			}
		}
	}

	// Kill the last worker with prejudice. Queries whose nodes live on
	// other shards must keep answering — degraded and tagged, not erroring
	// — and the router must stay ready.
	victim := workerCount - 1
	lo, _ := h.plan.Range(victim)
	if err := h.workers[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = h.workers[victim].cmd.Process.Wait()

	deadline := time.Now().Add(30 * time.Second)
	for {
		var got topkBody
		code := getJSON(t, h.routerURL+"/topk?nodes=7&k=5", &got)
		if code == http.StatusOK && got.Degraded != nil {
			if got.Degraded.MissingShards != 1 {
				t.Fatalf("degraded tag reports %d missing shards, want 1", got.Degraded.MissingShards)
			}
			if got.Degraded.ErrorBound <= 0 {
				t.Fatalf("degraded answer carries no error bound: %+v", got.Degraded)
			}
			if len(got.Matches) == 0 {
				t.Fatal("degraded answer is empty")
			}
			break
		}
		// The first request after the kill may still be answered exactly
		// from an in-flight connection, or hit the retry window; keep
		// probing until the degraded tag appears.
		if time.Now().After(deadline) {
			t.Fatalf("router never served a tagged degraded answer after the kill (last code %d)", code)
		}
		time.Sleep(100 * time.Millisecond)
	}
	resp, err := http.Get(h.routerURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router /readyz %d after worker kill; degraded serving must stay ready", resp.StatusCode)
	}
	// A query owned by the dead shard cannot be answered exactly or
	// degraded; it must fail with a typed upstream error, not hang.
	var gone topkBody
	if code := getJSON(t, h.routerURL+fmt.Sprintf("/topk?nodes=%d&k=5", lo), &gone); code == http.StatusOK {
		t.Fatalf("query owned by the killed shard returned 200: %+v", gone)
	}
}

// Package cluster holds the multi-process wire-split harness: tests that
// build real csrserver binaries into a 4-worker + 1-router localhost
// cluster from per-shard snapshots and hold the cluster's HTTP answers
// bitwise-identical to a monolithic csrserver over the same graph —
// including staying up (degraded and tagged) after a worker is killed
// mid-run.
//
// The tests are behind the "cluster" build tag and skip unless
// CSRSERVER_BIN names a built csrserver binary, because they exec real
// processes and bind real ports:
//
//	go build -o /tmp/csrserver ./cmd/csrserver
//	CSRSERVER_BIN=/tmp/csrserver go test -tags cluster -race -count=1 ./internal/cluster/
//
// Set CLUSTER_LOG_DIR to keep per-process logs (CI uploads them as
// artifacts when the job fails).
package cluster

// Command graphgen writes synthetic graphs as SNAP-style edge lists.
//
// Usage:
//
//	graphgen -dataset WT -out wt.txt             # a paper dataset stand-in
//	graphgen -gen er -n 1000 -m 5000 -out g.txt  # raw generators
//	graphgen -gen ba -n 1000 -k 8 -out g.txt
//	graphgen -gen rmat -logn 14 -m 200000 -out g.txt
//	graphgen -gen ws -n 1000 -k 6 -beta 0.1 -out g.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"csrplus/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = default)")
	gen := flag.String("gen", "", "raw generator: er, ba, ws, rmat")
	n := flag.Int("n", 1000, "node count (er, ba, ws)")
	m := flag.Int64("m", 5000, "edge count (er, rmat)")
	k := flag.Int("k", 4, "attachment/neighbour constant (ba, ws)")
	beta := flag.Float64("beta", 0.1, "rewiring probability (ws)")
	logn := flag.Int("logn", 10, "log2 node count (rmat)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", "", "output path (required)")
	flag.Parse()

	if err := run(*dataset, *scale, *gen, *n, *m, *k, *beta, *logn, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale int64, gen string, n int, m int64, k int, beta float64, logn int, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	g, err := build(dataset, scale, gen, n, m, k, beta, logn, seed)
	if err != nil {
		return err
	}
	if err := g.Save(out); err != nil {
		return err
	}
	st := g.ComputeStats()
	fmt.Printf("wrote %s: n=%d m=%d avg-degree=%.2f max-in=%d max-out=%d\n",
		out, st.N, st.M, st.AvgDegree, st.MaxInDeg, st.MaxOutDeg)
	return nil
}

func build(dataset string, scale int64, gen string, n int, m int64, k int, beta float64, logn int, seed int64) (*graph.Graph, error) {
	switch {
	case dataset != "" && gen != "":
		return nil, fmt.Errorf("use either -dataset or -gen, not both")
	case dataset != "":
		d, err := graph.DatasetByKey(dataset)
		if err != nil {
			return nil, err
		}
		if scale <= 0 {
			scale = d.Scale
		}
		return d.GenerateScaled(scale)
	case gen == "er":
		return graph.ErdosRenyi(n, m, seed)
	case gen == "ba":
		return graph.BarabasiAlbert(n, k, seed)
	case gen == "ws":
		return graph.WattsStrogatz(n, k, beta, seed)
	case gen == "rmat":
		return graph.RMAT(logn, m, graph.DefaultRMAT, seed)
	default:
		return nil, fmt.Errorf("one of -dataset or -gen {er, ba, ws, rmat} is required")
	}
}

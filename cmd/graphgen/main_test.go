package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildGenerators(t *testing.T) {
	cases := []struct {
		name string
		gen  string
	}{
		{"er", "er"}, {"ba", "ba"}, {"ws", "ws"}, {"rmat", "rmat"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := build("", 0, tc.gen, 100, 400, 4, 0.1, 7, 1)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() < 100 || g.M() == 0 {
				t.Fatalf("n=%d m=%d", g.N(), g.M())
			}
		})
	}
}

func TestBuildDataset(t *testing.T) {
	g, err := build("P2P", 64, "", 0, 0, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 22687/64 {
		t.Fatalf("n=%d", g.N())
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := build("", 0, "", 0, 0, 0, 0, 0, 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := build("FB", 0, "er", 10, 10, 0, 0, 0, 0); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := build("NOPE", 0, "", 0, 0, 0, 0, 0, 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestRunWritesFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.txt")
	if err := run("", 0, "er", 50, 200, 0, 0, 0, 3, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines != 200 {
		t.Fatalf("wrote %d edges, want 200", lines)
	}
}

func TestRunRequiresOut(t *testing.T) {
	if err := run("", 0, "er", 50, 200, 0, 0, 0, 3, ""); err == nil {
		t.Fatal("missing -out accepted")
	}
}

package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csrplus/internal/core"
	"csrplus/internal/graph"
)

func TestRunOnFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	edges := "0 1\n2 1\n3 1\n0 2\n1 0\n"
	if err := os.WriteFile(path, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "", 0, path, 4, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:         4", "edges:         5", "components:", "top in-degree hubs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Node 1 (in-degree 3) must lead the hub list.
	if !strings.Contains(out, "node 1") {
		t.Fatalf("hub list wrong:\n%s", out)
	}
}

func TestRunOnDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "P2P", 64, "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "heavy-tailed:  false") {
		t.Fatalf("P2P stand-in should not be heavy-tailed:\n%s", buf.String())
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := load("", 0, "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := load("FB", 0, "x", 1); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := load("", 0, "x.txt", 0); err == nil {
		t.Fatal("graph without -n accepted")
	}
	if _, err := load("NOPE", 0, "", 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// buildTestIndex precomputes a small CSR+ index to drive index mode.
func buildTestIndex(t *testing.T) *core.Index {
	t.Helper()
	g, err := graph.ErdosRenyi(40, 160, 7)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Precompute(g, core.Options{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestRunIndexInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.csrx")
	if err := core.SaveIndex(buildTestIndex(t), path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runIndex(&buf, path, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:         40", "rank:          4", "tier:          f64"} {
		if !strings.Contains(out, want) {
			t.Fatalf("index output missing %q:\n%s", want, out)
		}
	}
	if err := runIndex(&buf, path, "", "int8"); err == nil {
		t.Fatal("-quantize without -convert accepted")
	}
}

func TestRunIndexConvertQuantized(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "exact.csrx")
	ix := buildTestIndex(t)
	if err := core.SaveIndex(ix, src); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "small.csrx")
	var buf bytes.Buffer
	if err := runIndex(&buf, src, dst, "int8"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "written:") {
		t.Fatalf("no conversion reported:\n%s", buf.String())
	}
	back, err := core.LoadIndex(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Tier() != core.TierI8 {
		t.Fatalf("converted tier = %v, want int8", back.Tier())
	}
	if back.QuantizationBound() <= 0 {
		t.Fatal("converted index carries no quantization bound")
	}
	// Inspecting the quantized file surfaces tier and bound.
	buf.Reset()
	if err := runIndex(&buf, dst, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tier:          int8") || !strings.Contains(buf.String(), "quant bound:") {
		t.Fatalf("quantized inspect output wrong:\n%s", buf.String())
	}
}

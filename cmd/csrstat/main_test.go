package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csrplus/internal/core"
	"csrplus/internal/graph"
	"csrplus/internal/ingest"
)

func TestRunOnFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	edges := "0 1\n2 1\n3 1\n0 2\n1 0\n"
	if err := os.WriteFile(path, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "", 0, path, 4, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:         4", "edges:         5", "components:", "top in-degree hubs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Node 1 (in-degree 3) must lead the hub list.
	if !strings.Contains(out, "node 1") {
		t.Fatalf("hub list wrong:\n%s", out)
	}
}

func TestRunOnDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "P2P", 64, "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "heavy-tailed:  false") {
		t.Fatalf("P2P stand-in should not be heavy-tailed:\n%s", buf.String())
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := load("", 0, "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := load("FB", 0, "x", 1); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := load("", 0, "x.txt", 0); err == nil {
		t.Fatal("graph without -n accepted")
	}
	if _, err := load("NOPE", 0, "", 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// buildTestIndex precomputes a small CSR+ index to drive index mode.
func buildTestIndex(t *testing.T) *core.Index {
	t.Helper()
	g, err := graph.ErdosRenyi(40, 160, 7)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.Precompute(g, core.Options{Rank: 4})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestRunIndexInspect(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ix.csrx")
	if err := core.SaveIndex(buildTestIndex(t), path); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runIndex(&buf, path, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:         40", "rank:          4", "tier:          f64"} {
		if !strings.Contains(out, want) {
			t.Fatalf("index output missing %q:\n%s", want, out)
		}
	}
	if err := runIndex(&buf, path, "", "int8"); err == nil {
		t.Fatal("-quantize without -convert accepted")
	}
}

func TestRunIndexConvertQuantized(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "exact.csrx")
	ix := buildTestIndex(t)
	if err := core.SaveIndex(ix, src); err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(dir, "small.csrx")
	var buf bytes.Buffer
	if err := runIndex(&buf, src, dst, "int8"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "written:") {
		t.Fatalf("no conversion reported:\n%s", buf.String())
	}
	back, err := core.LoadIndex(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if back.Tier() != core.TierI8 {
		t.Fatalf("converted tier = %v, want int8", back.Tier())
	}
	if back.QuantizationBound() <= 0 {
		t.Fatal("converted index carries no quantization bound")
	}
	// Inspecting the quantized file surfaces tier and bound.
	buf.Reset()
	if err := runIndex(&buf, dst, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tier:          int8") || !strings.Contains(buf.String(), "quant bound:") {
		t.Fatalf("quantized inspect output wrong:\n%s", buf.String())
	}
}

func TestRunWal(t *testing.T) {
	dir := t.TempDir()
	w, err := ingest.Open(dir, ingest.WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]ingest.Record{
		{Src: 0, Dst: 1, Weight: 1},
		{Src: 1, Dst: 2, Weight: 1},
		{Src: 2, Dst: 0, Weight: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := runWal(&buf, dir); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"records:       3", "seq range:     1 - 3", "status:        clean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}

	// A crash mid-append leaves a torn tail: reported, but not an error.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	buf.Reset()
	if err := runWal(&buf, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "torn tail (3 bytes)") {
		t.Fatalf("torn tail not reported:\n%s", buf.String())
	}

	// Damage inside the acknowledged history is fatal and exits non-zero.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	// Add a later segment so the damaged one is not the final (torn-tail
	// eligible) segment.
	if err := os.WriteFile(filepath.Join(dir, "wal-ffffffffffffffff.seg"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := runWal(&buf, dir); err == nil {
		t.Fatalf("corrupt history not fatal:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "CORRUPT") {
		t.Fatalf("corrupt status not printed:\n%s", buf.String())
	}
}

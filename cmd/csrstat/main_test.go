package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunOnFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	edges := "0 1\n2 1\n3 1\n0 2\n1 0\n"
	if err := os.WriteFile(path, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run(&buf, "", 0, path, 4, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"nodes:         4", "edges:         5", "components:", "top in-degree hubs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// Node 1 (in-degree 3) must lead the hub list.
	if !strings.Contains(out, "node 1") {
		t.Fatalf("hub list wrong:\n%s", out)
	}
}

func TestRunOnDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "P2P", 64, "", 0, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "heavy-tailed:  false") {
		t.Fatalf("P2P stand-in should not be heavy-tailed:\n%s", buf.String())
	}
}

func TestLoadValidation(t *testing.T) {
	if _, err := load("", 0, "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := load("FB", 0, "x", 1); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := load("", 0, "x.txt", 0); err == nil {
		t.Fatal("graph without -n accepted")
	}
	if _, err := load("NOPE", 0, "", 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

// Command csrstat prints structural statistics of a graph — the numbers
// needed to sanity-check a dataset before indexing it (and the evidence
// behind DESIGN.md §5's stand-in matching).
//
// Usage:
//
//	csrstat -dataset TW
//	csrstat -graph edges.txt -n 100000 -hubs 10
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"csrplus/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "", "paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = default)")
	graphPath := flag.String("graph", "", "edge-list file")
	n := flag.Int("n", 0, "node count for -graph")
	hubs := flag.Int("hubs", 5, "number of top in-degree hubs to list")
	flag.Parse()

	if err := run(os.Stdout, *dataset, *scale, *graphPath, *n, *hubs); err != nil {
		fmt.Fprintln(os.Stderr, "csrstat:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, dataset string, scale int64, graphPath string, n, hubs int) error {
	g, err := load(dataset, scale, graphPath, n)
	if err != nil {
		return err
	}
	st := g.ComputeStats()
	fmt.Fprintf(out, "nodes:         %d\n", st.N)
	fmt.Fprintf(out, "edges:         %d\n", st.M)
	fmt.Fprintf(out, "avg degree:    %.2f\n", st.AvgDegree)
	fmt.Fprintf(out, "max in/out:    %d / %d\n", st.MaxInDeg, st.MaxOutDeg)
	fmt.Fprintf(out, "zero in/out:   %d / %d\n", st.ZeroInDeg, st.ZeroOutDeg)

	_, wcc := g.WeakComponents()
	_, scc := g.StrongComponents()
	fmt.Fprintf(out, "components:    %d weak, %d strong\n", wcc, scc)

	hist := g.InDegreeHistogram()
	fmt.Fprintf(out, "heavy-tailed:  %t (max in-degree %.0fx mean)\n",
		hist.PowerLawish(10), float64(hist.Max)/nonzero(hist.Mean))
	fmt.Fprintf(out, "in-degree histogram (power-of-two bins):\n")
	for k, c := range hist.Bins {
		if c == 0 {
			continue
		}
		fmt.Fprintf(out, "  [%6d, %6d): %d\n", 1<<k, 1<<(k+1), c)
	}
	if hubs > 0 {
		in := g.InDegrees()
		fmt.Fprintf(out, "top in-degree hubs:\n")
		for _, h := range g.TopHubs(hubs) {
			fmt.Fprintf(out, "  node %-10d in-degree %d\n", h, in[h])
		}
	}
	return nil
}

func nonzero(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

func load(dataset string, scale int64, graphPath string, n int) (*graph.Graph, error) {
	switch {
	case dataset != "" && graphPath != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case dataset != "":
		d, err := graph.DatasetByKey(dataset)
		if err != nil {
			return nil, err
		}
		if scale <= 0 {
			scale = d.Scale
		}
		return d.GenerateScaled(scale)
	case graphPath != "":
		if n <= 0 {
			return nil, fmt.Errorf("-graph requires -n")
		}
		return graph.Load(graphPath, n)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

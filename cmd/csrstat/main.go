// Command csrstat prints structural statistics of a graph — the numbers
// needed to sanity-check a dataset before indexing it (and the evidence
// behind DESIGN.md §5's stand-in matching) — and, in index mode,
// inspects and converts persisted CSR+ index files.
//
// Usage:
//
//	csrstat -dataset TW
//	csrstat -graph edges.txt -n 100000 -hubs 10
//	csrstat -index snap.csrx
//	csrstat -index old-v1.csrx -convert new.csrx              # v1 -> v2 migration
//	csrstat -index exact.csrx -convert small.csrx -quantize int8
//	csrstat -wal /var/lib/csrserver/wal                       # inspect an ingestion log
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"csrplus/internal/core"
	"csrplus/internal/graph"
	"csrplus/internal/ingest"
)

func main() {
	dataset := flag.String("dataset", "", "paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = default)")
	graphPath := flag.String("graph", "", "edge-list file")
	n := flag.Int("n", 0, "node count for -graph")
	hubs := flag.Int("hubs", 5, "number of top in-degree hubs to list")
	indexPath := flag.String("index", "", "inspect a persisted CSR+ index instead of a graph")
	convert := flag.String("convert", "", "with -index: rewrite the index to this path in the current (v2, mmap-able) layout")
	quantize := flag.String("quantize", "", "with -convert: factor tier of the written index, f32 or int8 (default: keep the source tier)")
	walDir := flag.String("wal", "", "inspect a streaming-ingestion WAL directory instead of a graph")
	flag.Parse()

	var err error
	switch {
	case *walDir != "":
		if *indexPath != "" {
			err = fmt.Errorf("-wal and -index are different modes; pick one")
		} else {
			err = runWal(os.Stdout, *walDir)
		}
	case *indexPath != "":
		err = runIndex(os.Stdout, *indexPath, *convert, *quantize)
	case *convert != "" || *quantize != "":
		err = fmt.Errorf("-convert and -quantize require -index")
	default:
		err = run(os.Stdout, *dataset, *scale, *graphPath, *n, *hubs)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "csrstat:", err)
		os.Exit(1)
	}
}

// runIndex is index mode: print the metadata a persisted index carries,
// and optionally rewrite it (v1 -> v2 migration, tier conversion).
// LoadIndex reads both layouts, so converting is load + save.
func runIndex(out io.Writer, path, convert, quantize string) error {
	ix, err := core.LoadIndex(path)
	if err != nil {
		return err
	}
	defer ix.Close()

	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "file:          %s (%d bytes)\n", path, fi.Size())
	fmt.Fprintf(out, "nodes:         %d\n", ix.N())
	fmt.Fprintf(out, "rank:          %d\n", ix.Rank())
	fmt.Fprintf(out, "damping:       %g\n", ix.Damping())
	fmt.Fprintf(out, "iterations:    %d\n", ix.Iterations())
	fmt.Fprintf(out, "tier:          %s\n", ix.Tier())
	fmt.Fprintf(out, "mapped:        %t\n", ix.Mapped())
	fmt.Fprintf(out, "factor bytes:  %d\n", ix.Bytes())
	if b := ix.QuantizationBound(); b > 0 {
		fmt.Fprintf(out, "quant bound:   %g (entrywise, vs the exact index)\n", b)
	}

	if convert == "" {
		if quantize != "" {
			return fmt.Errorf("-quantize requires -convert (quantization happens at write time)")
		}
		return nil
	}
	outIx := ix
	if quantize != "" {
		tier, err := core.ParseTier(quantize)
		if err != nil {
			return err
		}
		if outIx, err = ix.Quantize(tier); err != nil {
			return err
		}
	}
	if err := core.SaveIndex(outIx, convert); err != nil {
		return err
	}
	fmt.Fprintf(out, "written:       %s (tier %s)\n", convert, outIx.Tier())
	return nil
}

// runWal is WAL mode: a read-only walk of an ingestion log's segments —
// sequence range, per-segment record counts, CRC verification, the torn
// tail a crash mid-append left (recoverable: replay truncates it), and
// whether the acknowledged history itself is damaged (fatal: replay
// refuses to serve over it). Inspect never mutates the log, so it is
// safe against a live server's WAL directory.
func runWal(out io.Writer, dir string) error {
	info, err := ingest.Inspect(dir)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wal dir:       %s\n", info.Dir)
	fmt.Fprintf(out, "segments:      %d\n", len(info.Segments))
	fmt.Fprintf(out, "records:       %d\n", info.Records)
	if info.Records > 0 {
		fmt.Fprintf(out, "seq range:     %d - %d\n", info.FirstSeq, info.LastSeq)
	}
	for _, s := range info.Segments {
		fmt.Fprintf(out, "  %s: %d records (seq %d-%d), %d bytes", s.Name, s.Records, s.FirstSeq, s.LastSeq, s.Bytes)
		if s.TornTail > 0 {
			fmt.Fprintf(out, ", %d torn tail bytes", s.TornTail)
		}
		if s.Corrupt != "" {
			fmt.Fprintf(out, " [%s]", s.Corrupt)
		}
		fmt.Fprintln(out)
	}
	switch {
	case info.Corrupt != "":
		fmt.Fprintf(out, "status:        CORRUPT — %s\n", info.Corrupt)
		return fmt.Errorf("acknowledged history is damaged; restore the log from a replica or remove it and re-bootstrap from the latest snapshot")
	case info.TornTail > 0:
		fmt.Fprintf(out, "status:        torn tail (%d bytes) — the next replay truncates it\n", info.TornTail)
	default:
		fmt.Fprintf(out, "status:        clean\n")
	}
	return nil
}

func run(out io.Writer, dataset string, scale int64, graphPath string, n, hubs int) error {
	g, err := load(dataset, scale, graphPath, n)
	if err != nil {
		return err
	}
	st := g.ComputeStats()
	fmt.Fprintf(out, "nodes:         %d\n", st.N)
	fmt.Fprintf(out, "edges:         %d\n", st.M)
	fmt.Fprintf(out, "avg degree:    %.2f\n", st.AvgDegree)
	fmt.Fprintf(out, "max in/out:    %d / %d\n", st.MaxInDeg, st.MaxOutDeg)
	fmt.Fprintf(out, "zero in/out:   %d / %d\n", st.ZeroInDeg, st.ZeroOutDeg)

	_, wcc := g.WeakComponents()
	_, scc := g.StrongComponents()
	fmt.Fprintf(out, "components:    %d weak, %d strong\n", wcc, scc)

	hist := g.InDegreeHistogram()
	fmt.Fprintf(out, "heavy-tailed:  %t (max in-degree %.0fx mean)\n",
		hist.PowerLawish(10), float64(hist.Max)/nonzero(hist.Mean))
	fmt.Fprintf(out, "in-degree histogram (power-of-two bins):\n")
	for k, c := range hist.Bins {
		if c == 0 {
			continue
		}
		fmt.Fprintf(out, "  [%6d, %6d): %d\n", 1<<k, 1<<(k+1), c)
	}
	if hubs > 0 {
		in := g.InDegrees()
		fmt.Fprintf(out, "top in-degree hubs:\n")
		for _, h := range g.TopHubs(hubs) {
			fmt.Fprintf(out, "  node %-10d in-degree %d\n", h, in[h])
		}
	}
	return nil
}

func nonzero(x float64) float64 {
	if x == 0 {
		return 1
	}
	return x
}

func load(dataset string, scale int64, graphPath string, n int) (*graph.Graph, error) {
	switch {
	case dataset != "" && graphPath != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case dataset != "":
		d, err := graph.DatasetByKey(dataset)
		if err != nil {
			return nil, err
		}
		if scale <= 0 {
			scale = d.Scale
		}
		return d.GenerateScaled(scale)
	case graphPath != "":
		if n <= 0 {
			return nil, fmt.Errorf("-graph requires -n")
		}
		return graph.Load(graphPath, n)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

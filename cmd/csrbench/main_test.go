package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"csrplus/internal/bench"
)

func quickEnv(buf *bytes.Buffer) *bench.Env {
	e := bench.NewEnv(buf).Quick()
	// Tighten aggressively: this test only checks dispatch and rendering;
	// runner behaviour is covered in internal/bench. The small flop budget
	// TIME-guards every heavy baseline cell, leaving CSR+ and the renders.
	e.ExtraScale *= 8
	e.FlopBudget = 3e8
	e.MemBudget = 16 << 20
	return e
}

func TestRunTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickEnv(&buf), "table1", map[string]interface{}{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatal("table1 output missing")
	}
}

func TestRunFigureDispatch(t *testing.T) {
	cases := map[string]string{
		"fig2":     "Figure 2",
		"fig3":     "Figure 3",
		"fig4":     "Figure 4",
		"fig5":     "Figure 5",
		"fig6":     "Figure 6",
		"fig7":     "Figure 7",
		"fig8":     "Figure 8",
		"fig9":     "Figure 9",
		"table3":   "Table 3",
		"datasets": "stand-ins",
		"rankeval": "ranking quality",
		"ablation": "Ablation",
	}
	for exp, want := range cases {
		exp, want := exp, want
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(quickEnv(&buf), exp, map[string]interface{}{}); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), want) {
				t.Fatalf("%s output missing %q", exp, want)
			}
		})
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run(quickEnv(&buf), "fig99", map[string]interface{}{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestJSONExport(t *testing.T) {
	var buf bytes.Buffer
	results := map[string]interface{}{}
	if err := run(quickEnv(&buf), "fig2", results); err != nil {
		t.Fatal(err)
	}
	if results["grid"] == nil {
		t.Fatal("grid result not collected")
	}
	path := filepath.Join(t.TempDir(), "r.json")
	if err := writeJSON(path, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]interface{}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if back["grid"] == nil {
		t.Fatal("grid missing from JSON")
	}
}

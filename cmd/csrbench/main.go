// Command csrbench regenerates the paper's evaluation (§4): every figure
// and table, on synthetic stand-ins for its six SNAP datasets.
//
// Usage:
//
//	csrbench -exp all                 # the whole evaluation suite
//	csrbench -exp fig2                # one experiment: fig2..fig9, table1, table3
//	csrbench -exp fig4 -quick         # heavily downscaled, sub-second cells
//	csrbench -exp fig2 -scale 4       # extra downscale factor on every dataset
//	csrbench -membudget 4 -flopbudget 1e10
//
// Cells whose analytic memory estimate exceeds -membudget GiB print ✗MEM —
// the honest equivalent of the paper's "crashed due to memory" entries —
// and cells whose flop estimate exceeds -flopbudget print ✗TIME.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"csrplus/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig2..fig9, table1, table3, datasets, rankeval, ablation, csweep")
	quick := flag.Bool("quick", false, "heavily downscaled datasets (sub-second cells)")
	scale := flag.Int64("scale", 1, "extra downscale factor applied to every dataset")
	memGiB := flag.Float64("membudget", 10, "analytic memory budget in GiB (0 disables the guard)")
	flops := flag.Float64("flopbudget", 4e10, "flop budget per cell (0 disables the guard)")
	cacheDir := flag.String("cachedir", "", "directory for cached generated graphs (empty disables)")
	verbose := flag.Bool("v", false, "print a heartbeat line per executed cell to stderr")
	jsonOut := flag.String("jsonout", "", "also write raw results as JSON to this path (for plotting)")
	flag.Parse()

	env := bench.NewEnv(os.Stdout)
	if *quick {
		env.Quick()
	}
	if *scale > 1 {
		env.ExtraScale *= *scale
	}
	env.MemBudget = int64(*memGiB * float64(1<<30))
	env.FlopBudget = int64(*flops)
	env.CacheDir = *cacheDir
	if *verbose {
		env.Progress = os.Stderr
	}

	results := make(map[string]interface{})
	if err := run(env, *exp, results); err != nil {
		fmt.Fprintln(os.Stderr, "csrbench:", err)
		os.Exit(1)
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, results); err != nil {
			fmt.Fprintln(os.Stderr, "csrbench:", err)
			os.Exit(1)
		}
	}
}

// writeJSON dumps the collected experiment structs for external plotting.
func writeJSON(path string, results map[string]interface{}) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("encoding %s: %w", path, err)
	}
	return nil
}

func run(env *bench.Env, exp string, results map[string]interface{}) error {
	switch exp {
	case "table1":
		bench.RenderTable1(env.Out)
	case "fig2", "fig6":
		grid, err := env.RunGrid()
		if err != nil {
			return err
		}
		results["grid"] = grid
		if exp == "fig2" {
			grid.RenderFig2(env)
		} else {
			grid.RenderFig6(env)
		}
	case "fig3", "fig7":
		s, err := env.RunPhaseSweep(nil)
		if err != nil {
			return err
		}
		results["phase"] = s
		if exp == "fig3" {
			s.RenderFig3(env)
		} else {
			s.RenderFig7(env)
		}
	case "fig4", "fig8":
		s, err := env.RunRankSweep(nil)
		if err != nil {
			return err
		}
		results["rank-sweep"] = s
		if exp == "fig4" {
			s.RenderFig4(env)
		} else {
			s.RenderFig8(env)
		}
	case "fig5", "fig9":
		s, err := env.RunQuerySweep(nil)
		if err != nil {
			return err
		}
		results["query-sweep"] = s
		if exp == "fig5" {
			s.RenderFig5(env)
		} else {
			s.RenderFig9(env)
		}
	case "table3":
		res, err := env.RunTable3(nil)
		if err != nil {
			return err
		}
		results["table3"] = res
		res.Render(env)
	case "datasets":
		return env.RenderDatasets()
	case "rankeval":
		res, err := env.RunRankEval(nil)
		if err != nil {
			return err
		}
		results["rankeval"] = res
		res.Render(env)
	case "csweep":
		res, err := env.RunCSweep(nil)
		if err != nil {
			return err
		}
		results["csweep"] = res
		res.Render(env)
	case "ablation":
		res, err := env.RunAblation(nil)
		if err != nil {
			return err
		}
		results["ablation"] = res
		res.Render(env)
	case "all":
		bench.RenderTable1(env.Out)
		if err := env.RenderDatasets(); err != nil {
			return err
		}
		grid, err := env.RunGrid()
		if err != nil {
			return err
		}
		results["grid"] = grid
		grid.RenderFig2(env)
		grid.RenderFig6(env)
		phase, err := env.RunPhaseSweep(nil)
		if err != nil {
			return err
		}
		results["phase"] = phase
		phase.RenderFig3(env)
		phase.RenderFig7(env)
		ranks, err := env.RunRankSweep(nil)
		if err != nil {
			return err
		}
		results["rank-sweep"] = ranks
		ranks.RenderFig4(env)
		ranks.RenderFig8(env)
		qs, err := env.RunQuerySweep(nil)
		if err != nil {
			return err
		}
		results["query-sweep"] = qs
		qs.RenderFig5(env)
		qs.RenderFig9(env)
		t3, err := env.RunTable3(nil)
		if err != nil {
			return err
		}
		results["table3"] = t3
		t3.Render(env)
		re, err := env.RunRankEval(nil)
		if err != nil {
			return err
		}
		results["rankeval"] = re
		re.Render(env)
		ab, err := env.RunAblation(nil)
		if err != nil {
			return err
		}
		results["ablation"] = ab
		ab.Render(env)
		cw, err := env.RunCSweep(nil)
		if err != nil {
			return err
		}
		results["csweep"] = cw
		cw.Render(env)
	default:
		return fmt.Errorf("unknown experiment %q (want all, fig2..fig9, table1, table3, datasets, rankeval, ablation, csweep)", exp)
	}
	return nil
}

package main

import (
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"csrplus/internal/fault"
)

// armFaultsFromEnv arms the fault-injection registry from the
// environment, so a test harness can inject faults into a real csrserver
// process without a bespoke flag surface:
//
//	CSRSERVER_FAULT_SEED=7
//	CSRSERVER_FAULTS="ingest/wal.append:errprob=0.1,tornprob=0.2,tornbytes=13;ingest/wal.fsync:errprob=0.2"
//
// The spec is ';'-separated site entries, each "site:key=val,key=val".
// Keys mirror fault.Plan: errprob, tornprob, tornbytes, allocprob,
// latencyprob, latency (a time.Duration). In a binary built without
// -tags faultinject the registry's hooks compile to no-ops; a requested
// spec is then reported and ignored rather than silently half-applied.
func armFaultsFromEnv() {
	spec := os.Getenv("CSRSERVER_FAULTS")
	if spec == "" {
		return
	}
	seed := int64(1)
	if s := os.Getenv("CSRSERVER_FAULT_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			log.Fatalf("CSRSERVER_FAULT_SEED=%q is not an integer: %v", s, err)
		}
		seed = v
	}
	fault.Enable(seed)
	if !fault.Enabled() {
		log.Printf("CSRSERVER_FAULTS set but this binary was built without -tags faultinject; ignoring")
		return
	}
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		site, kvs, ok := strings.Cut(entry, ":")
		if !ok {
			log.Fatalf("CSRSERVER_FAULTS entry %q: want site:key=val,...", entry)
		}
		var plan fault.Plan
		for _, kv := range strings.Split(kvs, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				log.Fatalf("CSRSERVER_FAULTS entry %q: bad pair %q", entry, kv)
			}
			var err error
			switch k {
			case "errprob":
				plan.ErrProb, err = strconv.ParseFloat(v, 64)
			case "tornprob":
				plan.TornProb, err = strconv.ParseFloat(v, 64)
			case "tornbytes":
				plan.TornBytes, err = strconv.Atoi(v)
			case "allocprob":
				plan.AllocProb, err = strconv.ParseFloat(v, 64)
			case "latencyprob":
				plan.LatencyProb, err = strconv.ParseFloat(v, 64)
			case "latency":
				plan.Latency, err = time.ParseDuration(v)
			default:
				log.Fatalf("CSRSERVER_FAULTS entry %q: unknown key %q", entry, k)
			}
			if err != nil {
				log.Fatalf("CSRSERVER_FAULTS entry %q: bad value %q for %q: %v", entry, v, k, err)
			}
		}
		fault.Arm(site, plan)
		log.Printf("fault injection: armed %s (seed %d): %+v", site, seed, plan)
	}
}

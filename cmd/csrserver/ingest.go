package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"csrplus"

	"csrplus/internal/ingest"
	"csrplus/internal/reload"
)

// setupIngest builds the cold streaming-ingestion service over the
// monolithic boot engine and anchors the boot generation's drift closure
// at baseline zero (Recover charges exactly the WAL tail past the
// snapshot's recorded sequence, which is exactly what the boot factors
// don't cover). The service is returned cold: the caller starts WAL
// replay (Recover) in the background so /readyz can honestly report
// not-ready while a long tail replays.
func setupIngest(g *csrplus.Graph, eng *csrplus.Engine, cand *reload.Candidate, walDir string, budget float64) (*ingest.Service, error) {
	ix, ok := eng.CoreIndex()
	if !ok {
		return nil, fmt.Errorf("-waldir requires the CSR+ algorithm")
	}
	svc, err := ingest.NewService(g.CoreGraph(), ix, ingest.Config{Dir: walDir, DriftBudget: budget})
	if err != nil {
		return nil, err
	}
	cand.Drift = svc.DriftFrom(0)
	return svc, nil
}

// ingestLoader replaces the static source loader once streaming ingestion
// is on: every reload cuts the live graph (boot base + replayed WAL +
// streamed edges), precomputes fresh factors over it, stamps the snapshot
// with the cut's WAL sequence so the next boot replays only the tail, and
// hands the reload manager a candidate whose drift closure is anchored at
// the cut.
func ingestLoader(src *source, svc *ingest.Service) reload.LoadFunc {
	return func(ctx context.Context) (*reload.Candidate, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !svc.Ready() {
			return nil, fmt.Errorf("ingest replay still in progress")
		}
		start := time.Now()
		live, seq, d0, err := svc.Cut()
		if err != nil {
			return nil, err
		}
		g := csrplus.FromCoreGraph(live)
		log.Printf("rebuilding %s index over live graph n=%d m=%d (wal seq %d, drift %.3g) ...",
			src.algo, g.N(), g.M(), seq, d0)
		eng, err := csrplus.NewEngine(g, csrplus.Options{Algorithm: src.algo, Rank: src.rank, Damping: src.damping})
		if err != nil {
			return nil, err
		}
		ix, ok := eng.CoreIndex()
		if !ok {
			return nil, fmt.Errorf("-waldir requires the CSR+ algorithm")
		}
		ix.SetWalSeq(seq)
		meta := reload.Meta{Source: "ingest-rebuild"}
		if src.snapDir != "" {
			gen, path, err := eng.SaveSnapshot(src.snapDir)
			if err != nil {
				_ = eng.Close()
				return nil, err
			}
			meta.Path, meta.SnapshotGen = path, gen
			log.Printf("live graph published as snapshot generation %d (%s, wal seq %d)", gen, path, seq)
		}
		st := eng.Stats()
		meta.Algorithm, meta.N, meta.M, meta.Rank = st.Algorithm, st.N, st.M, st.Rank
		meta.BuildTime = time.Since(start)
		meta.PeakBytes = st.PeakBytes
		return &reload.Candidate{
			N:         st.N,
			Query:     eng.QueryInto,
			RankQuery: eng.QueryRankInto,
			Rank:      st.Rank,
			Bound:     eng.TruncationBound,
			Meta:      meta,
			Drift:     svc.DriftFrom(d0),
			Release:   func() { _ = eng.Close() },
		}, nil
	}
}

// reloadAndCommit runs one reload and settles the ingest drift baseline:
// a successful swap absorbs everything up to the loader's cut
// (RebuildDone(true)); a failure keeps the old baseline — and its honest
// drift accounting — so the next over-budget append re-fires the rebuild
// trigger. A coalesced trigger is left to the in-flight reload's own
// commit. svc may be nil (no ingestion configured).
func reloadAndCommit(ctx context.Context, man *reload.Manager, svc *ingest.Service) (reload.Status, error) {
	st, err := man.Reload(ctx)
	if svc != nil && !errors.Is(err, reload.ErrCoalesced) {
		svc.RebuildDone(err == nil)
	}
	return st, err
}

package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"csrplus"

	"csrplus/internal/core"
	"csrplus/internal/ingest"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
)

// ingestFixture boots the monolithic serving stack with streaming
// ingestion the way main does: engine, cold ingest service, drift-aware
// serve layer, mux. Recovery is left to the caller so the readiness
// gating is testable.
func ingestFixture(t *testing.T, walDir string, budget float64, token string) (*ingest.Service, *httptest.Server) {
	t.Helper()
	g := testGraph(t)
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 6})
	if err != nil {
		t.Fatal(err)
	}
	cand := &reload.Candidate{}
	svc, err := setupIngest(g, eng, cand, walDir, budget)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	st := eng.Stats()
	sv := serve.NewRanked(serve.Ranked{
		N:     st.N,
		Rank:  st.Rank,
		Bound: eng.TruncationBound,
		Query: eng.QueryRankInto,
		Drift: cand.Drift,
	}, serve.Config{Linger: -1})
	t.Cleanup(sv.Close)
	srv := httptest.NewServer(newMux(testManager(t, eng, sv), sv, nil, token, nil, svc))
	t.Cleanup(srv.Close)
	return svc, srv
}

func postEdges(t *testing.T, srv *httptest.Server, token, body string) (int, map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/admin/edges", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]interface{}{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /admin/edges response: %v", err)
	}
	return resp.StatusCode, out
}

func TestAdminEdgesLifecycle(t *testing.T) {
	svc, srv := ingestFixture(t, t.TempDir(), 1e-9, "sesame")

	// Until the WAL tail is replayed the replica must not take traffic
	// or writes: acknowledged edges would silently be missing.
	if code, body := doReq(t, srv, http.MethodGet, "/readyz", ""); code != http.StatusServiceUnavailable ||
		body["status"] != "ingest replay in progress" {
		t.Fatalf("readyz during replay: %d %v", code, body)
	}
	if code, _ := postEdges(t, srv, "sesame", `{"edges":[{"src":1,"dst":0}]}`); code != http.StatusServiceUnavailable {
		t.Fatalf("append during replay: %d", code)
	}
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	if code, body := doReq(t, srv, http.MethodGet, "/readyz", ""); code != http.StatusOK || body["ingest_ready"] != true {
		t.Fatalf("readyz after replay: %d %v", code, body)
	}

	// Same Bearer discipline as /admin/reload: missing 401, wrong 403.
	if code, _ := postEdges(t, srv, "", `{"edges":[]}`); code != http.StatusUnauthorized {
		t.Fatalf("missing token: %d", code)
	}
	if code, _ := postEdges(t, srv, "wrong", `{"edges":[]}`); code != http.StatusForbidden {
		t.Fatalf("wrong token: %d", code)
	}

	code, body := postEdges(t, srv, "sesame", `{"edges":[{"src":1,"dst":0}]}`)
	if code != http.StatusOK {
		t.Fatalf("append: %d %v", code, body)
	}
	if body["seq"].(float64) != 1 || body["drift_bound"].(float64) <= 0 {
		t.Fatalf("append response: %v", body)
	}

	// The tiny budget is now exceeded: answers must carry the drift bound
	// and be tagged degraded even at full rank.
	if code, body := doReq(t, srv, http.MethodGet, "/topk?node=0&k=3", ""); code != http.StatusOK {
		t.Fatalf("topk: %d %v", code, body)
	} else if deg, ok := body["degraded"].(map[string]interface{}); !ok || deg["drift_bound"].(float64) <= 0 {
		t.Fatalf("drifted answer not tagged: %v", body)
	}

	if code, _ := postEdges(t, srv, "sesame", `{"edges":[{"src":99,"dst":0}]}`); code != http.StatusBadRequest {
		t.Fatalf("out-of-range edge: %d", code)
	}
	if code, _ := postEdges(t, srv, "sesame", `{"edges":`); code != http.StatusBadRequest {
		t.Fatalf("truncated body: %d", code)
	}

	if _, body := doReq(t, srv, http.MethodGet, "/stats", ""); body["ingest"] == nil {
		t.Fatalf("stats missing ingest section: %v", body)
	} else if ing := body["ingest"].(map[string]interface{}); ing["last_seq"].(float64) != 1 || ing["budget_exceeded"] != true {
		t.Fatalf("ingest stats: %v", ing)
	}
}

func TestIngestRebuildLoaderPublishesSnapshot(t *testing.T) {
	g := testGraph(t)
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	cand := &reload.Candidate{}
	svc, err := setupIngest(g, eng, cand, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := svc.Append([]ingest.Edge{{Src: 1, Dst: 0}, {Src: 2, Dst: 0}}); err != nil {
		t.Fatal(err)
	}
	if svc.DriftBound() <= 0 {
		t.Fatal("appends accrued no drift")
	}

	snapDir := t.TempDir()
	src := &source{g: g, algo: csrplus.AlgoCSRPlus, rank: 3, damping: 0.6, snapDir: snapDir}
	st := eng.Stats()
	sv := serve.NewRanked(serve.Ranked{
		N: st.N, Rank: st.Rank, Bound: eng.TruncationBound,
		Query: eng.QueryRankInto, Drift: cand.Drift,
	}, serve.Config{Linger: -1})
	defer sv.Close()
	man := reload.New(sv, ingestLoader(src, svc), reload.Meta{Source: "boot"})

	status, err := reloadAndCommit(context.Background(), man, svc)
	if err != nil {
		t.Fatal(err)
	}
	if status.Source != "ingest-rebuild" {
		t.Fatalf("reload source %q, want ingest-rebuild", status.Source)
	}
	// Commit promoted the cut's baseline: the new generation serves with
	// zero drift until the next append.
	if d := svc.DriftBound(); d > 1e-12 {
		t.Fatalf("post-commit drift %g", d)
	}
	// The published snapshot covers the live graph (one extra edge's
	// worth of M) and records the cut's WAL sequence, so the next boot
	// replays nothing below it.
	path, _, err := core.CurrentSnapshot(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if ix.WalSeq() != 2 {
		t.Fatalf("snapshot wal seq %d, want 2", ix.WalSeq())
	}
	if status.M != g.M()+2 {
		t.Fatalf("rebuilt over m=%d, want %d", status.M, g.M()+2)
	}
}

// The wire split: csrserver runs either as a shard worker (-shardworker,
// one process serving one node-range shard over HTTP) or as a shard
// router (-shardaddrs, the public frontend fanning every query out to the
// workers and merging their partial top-k lists exactly). The two modes
// compose into a multi-process cluster whose answers are bitwise-
// identical to a monolithic csrserver — see internal/wire and DESIGN.md
// §14.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"csrplus"

	"csrplus/internal/cache"
	"csrplus/internal/core"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
	"csrplus/internal/shard"
	"csrplus/internal/topk"
	"csrplus/internal/wire"
)

// runShardWorker is the -shardworker mode: boot one shard from its own
// snapshot directory (<snapshots>/shard-<s>) and serve the wire protocol
// until SIGINT/SIGTERM. SIGHUP reloads the newest snapshot in place, the
// same trigger the monolithic server honours. No graph flags are needed —
// the snapshot carries the shard's whole identity.
func runShardWorker(shardIdx int, snapDir, addr, adminToken string) {
	if snapDir == "" {
		log.Fatalln("csrserver: -shardworker requires -snapshots (the worker boots from <snapshots>/shard-<s>)")
	}
	w, err := wire.BootWorker(wire.WorkerConfig{
		Shard:       shardIdx,
		SnapshotDir: core.ShardDir(snapDir, shardIdx),
		AdminToken:  adminToken,
	})
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	slot := w.Slot()
	log.Printf("shard worker %d: serving nodes [%d, %d) of n=%d r=%d on %s",
		shardIdx, slot.Lo(), slot.Hi(), slot.N(), slot.Rank(), addr)

	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Printf("shard worker %d: SIGHUP, reloading snapshot ...", shardIdx)
			if _, err := w.Reload(); err != nil {
				log.Printf("shard worker %d: reload failed: %v", shardIdx, err)
			}
		}
	}()
	srv := &http.Server{Addr: addr, Handler: w.Handler(), ReadHeaderTimeout: 5 * time.Second}
	serveAndWait(srv, nil, fmt.Sprintf("shard worker %d", shardIdx))
}

// wireRouterConfig is everything the -shardaddrs mode needs, assembled
// from flags in main.
type wireRouterConfig struct {
	addrs      []string
	addr       string
	adminToken string
	lru        *cache.LRU
	serveCfg   serve.Config
	policy     reload.Policy
	opt        wire.Options
}

// runWireRouter is the -shardaddrs mode: dial every worker, assemble the
// scatter-gather router over the remote slots, and serve the standard
// csrserver HTTP surface. A reload trigger (SIGHUP, POST /admin/reload)
// rolls the REMOTE workers one at a time via their /admin/reload — the
// reload.RollShards discipline moved across the process boundary.
func runWireRouter(cfg wireRouterConfig) {
	start := time.Now()
	dialCtx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	engines := make([]*wire.RemoteEngine, len(cfg.addrs))
	slots := make([]shard.Slot, len(cfg.addrs))
	for i, a := range cfg.addrs {
		opt := cfg.opt
		opt.Shard = i
		e, err := wire.Dial(dialCtx, normalizeAddr(a), opt)
		if err != nil {
			log.Fatalln("csrserver:", err)
		}
		engines[i], slots[i] = e, e
		log.Printf("shard %d: %s serving nodes [%d, %d) generation %d", i, e.Addr(), e.Lo(), e.Hi(), e.Generation())
	}
	rt, err := shard.NewRouterSlots(slots)
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	// The bound cache must be primed while every worker is reachable:
	// degraded serving later needs the missing-shard bound, and a dead
	// worker is exactly when it cannot be fetched fresh.
	if err := rt.PrimeBound(); err != nil {
		log.Fatalln("csrserver: priming error bounds:", err)
	}
	addrList := strings.Join(cfg.addrs, ",")
	boot := wireCandidate(rt, addrList, time.Since(start))
	log.Printf("ready in %v (wire router over %d shards, n=%d r=%d)", boot.Meta.BuildTime, rt.K(), rt.N(), rt.Rank())

	sv := serve.NewRanked(serve.Ranked{
		N:      boot.N,
		Rank:   boot.Rank,
		Bound:  boot.Bound,
		TopK:   boot.TopK,
		Scores: boot.Scores,
	}, cfg.serveCfg)
	sv.Metrics().SetShards(rt.K())
	sv.Metrics().RegisterExtra("wire_shards", func() any {
		stats := make([]wire.SlotStats, len(engines))
		for i, e := range engines {
			stats[i] = e.Stats()
		}
		return stats
	})
	lru := cfg.lru
	load := func(ctx context.Context) (*reload.Candidate, error) {
		rollStart := time.Now()
		swapped, err := wire.RollWorkers(ctx, engines)
		if err != nil {
			// Mirror invalidateAfterPartialRoll: some workers now answer
			// from new factors but the serve generation never bumped, so
			// pre-roll cache entries must not outlive the partial roll.
			if swapped > 0 && lru != nil {
				lru.Clear()
				log.Printf("csrserver: rolling remote reload failed after %d worker swap(s); result cache cleared", swapped)
			}
			return nil, err
		}
		return wireCandidate(rt, addrList, time.Since(rollStart)), nil
	}
	man := reload.NewWithPolicy(sv, load, boot.Meta, cfg.policy)
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go reloadOnHUP(hup, man, nil)
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           newMux(man, sv, lru, cfg.adminToken, rt, nil),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveAndWait(srv, sv, "wire router")
}

// wireCandidate wraps the wire router as a reload candidate: Search and
// Score bypass the column batcher through the router's direct top-k and
// targeted-score paths (no n x |Q| matrix ever crosses the wire), and
// reload validation smoke-queries the actual cluster. The closures are
// rebuilt per roll so each swap installs a fresh serve generation —
// which is what invalidates every cached pre-roll result.
func wireCandidate(rt *shard.Router, addrList string, build time.Duration) *reload.Candidate {
	return &reload.Candidate{
		N:     rt.N(),
		Rank:  rt.Rank(),
		Bound: rt.TruncationBound,
		TopK: func(ctx context.Context, queries []int, k, rank int) ([]topk.Item, serve.TopKProvenance, error) {
			res, err := rt.TopKTagged(ctx, queries, k, rank)
			if err != nil {
				return nil, serve.TopKProvenance{}, err
			}
			return res.Items, serve.TopKProvenance{MissingShards: res.Missing, ErrorBound: res.ErrorBound}, nil
		},
		Scores: rt.Scores,
		Meta: reload.Meta{
			Source:    "wire",
			Path:      addrList,
			Algorithm: csrplus.AlgoCSRPlus,
			N:         rt.N(),
			Rank:      rt.Rank(),
			Shards:    rt.K(),
			BuildTime: build,
		},
	}
}

// normalizeAddr accepts bare host:port worker addresses alongside full
// URLs.
func normalizeAddr(a string) string {
	if strings.Contains(a, "://") {
		return a
	}
	return "http://" + a
}

// serveAndWait runs srv until SIGINT/SIGTERM, then drains it gracefully.
// sv, when non-nil, is closed after HTTP shutdown so pending batches
// flush before the process exits. name labels the log lines.
func serveAndWait(srv *http.Server, sv *serve.Server, name string) {
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalln("csrserver:", err)
		}
	}()
	log.Printf("csrserver: %s listening on %s", name, srv.Addr)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("csrserver: %s shutting down ...", name)
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Println("csrserver: shutdown:", err)
	}
	if sv != nil {
		sv.Close()
	}
	log.Printf("csrserver: %s drained", name)
}

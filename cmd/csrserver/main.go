// Command csrserver serves CoSimRank similarity search over HTTP — the
// "online multi-source query" phase of CSR+ as a long-lived service: the
// index is precomputed once at startup, queries are answered from it.
//
// Requests are routed through internal/serve, which dynamically batches
// concurrent queries into multi-source engine passes (the paper's
// O(r(m + n(r + |Q|))) bound makes the marginal query nearly free),
// bounds concurrency with a worker pool, sheds load when the admission
// queue fills (HTTP 429), enforces per-request deadlines (504), and
// drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	csrserver -dataset WT -addr :8080
//	csrserver -graph edges.txt -n 100000 -r 8
//
// The index can be hot-reloaded with zero downtime: SIGHUP (or an
// authenticated POST /admin/reload) builds or loads the next index
// generation off the serving path, validates it with a smoke query, and
// atomically swaps it in while in-flight batches drain on the old one.
// With -snapshots DIR the server boots from the versioned snapshot the
// directory's CURRENT file names (index-<gen>.csrx), and each reload
// re-resolves CURRENT — publish a new snapshot, repoint CURRENT, send
// SIGHUP, and traffic moves to the new index without dropping a request.
//
// With -shards K (CSR+ only) the index is partitioned into K contiguous
// node-range shards behind an in-process scatter-gather router. Every
// query fans out to all shards in parallel and the per-shard partial
// top-k lists are merged into the exact global answer — results are
// bitwise-identical to a monolithic server at any K. Each shard has its
// own generation and snapshot directory (<dir>/shard-<s>), and reloads
// roll shard by shard: a failure mid-roll leaves a mixed-generation
// router that still answers every query exactly.
//
// Endpoints:
//
//	GET /health, /healthz             liveness (process up)
//	GET /readyz                       readiness (generation serving, breaker closed)
//	GET /stats                        graph + engine + serving counters
//	GET /metrics                      serving metrics (batching, queue, cache)
//	GET /topk?node=17&k=10            top-k most similar to one node
//	GET /topk?nodes=17,42&k=10        top-k by aggregate similarity
//	GET /similarity?node=17&targets=1,2,3   raw scores for chosen pairs
//	GET /admin/index                  live generation: source, path, build cost
//	POST /admin/reload                trigger a reload (Bearer -admintoken)
//
// With -degraderank R the server degrades gracefully under pressure:
// requests admitted with little deadline budget (-degradebudget) or
// batches flushed while the admission queue is past -degradequeue of its
// bound are answered at truncated rank R — cheaper by roughly R/r — and
// tagged with a "degraded" object carrying the effective rank and the
// index's entrywise error bound. Reload failures retry with exponential
// backoff (-reloadretries, -reloadbackoff); persistent failure opens a
// circuit breaker (-breakerfails, -breakercooldown) surfaced on /readyz.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"csrplus"

	"csrplus/internal/auth"
	"csrplus/internal/cache"
	"csrplus/internal/core"
	"csrplus/internal/ingest"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
	"csrplus/internal/shard"
	"csrplus/internal/wire"
)

func main() {
	dataset := flag.String("dataset", "", "paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = default)")
	graphPath := flag.String("graph", "", "edge-list file")
	n := flag.Int("n", 0, "node count for -graph")
	algo := flag.String("algo", csrplus.AlgoCSRPlus, "algorithm")
	rank := flag.Int("r", 5, "SVD rank / iteration count")
	damping := flag.Float64("c", 0.6, "damping factor")
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "load a persisted CSR+ index instead of precomputing")
	saveIndex := flag.String("saveindex", "", "persist the precomputed CSR+ index to this path")
	quantize := flag.String("quantize", "", "factor tier for -saveindex and snapshot publishes: f32 or int8 (default exact f64); the serving engine stays exact")
	snapDir := flag.String("snapshots", "", "versioned snapshot directory (index-<gen>.csrx + CURRENT); boot from CURRENT when present, publish the boot index otherwise")
	shards := flag.Int("shards", 1, "partition the index into this many node-range shards behind a scatter-gather router (CSR+ only; 1 = monolithic)")
	shardWorker := flag.Int("shardworker", -1, "serve ONE shard over the wire protocol: boot from <snapshots>/shard-<s> and answer /shard/* requests (requires -snapshots; graph flags are ignored)")
	shardAddrs := flag.String("shardaddrs", "", "comma-separated shard worker addresses; serve as the shard router over these remote workers (graph flags are ignored)")
	wireTimeout := flag.Duration("wiretimeout", 5*time.Second, "per-attempt deadline for shard worker requests")
	wireRetries := flag.Int("wireretries", 3, "attempts per shard worker request (1 = no retry)")
	wireBackoff := flag.Duration("wirebackoff", 25*time.Millisecond, "base backoff between shard request retries (exponential, jittered)")
	wireHedge := flag.Float64("wirehedge", 0.9, "observed-latency quantile past which a shard request is hedged (negative disables)")
	wireHedgeMin := flag.Duration("wirehedgemin", time.Millisecond, "floor on the hedge delay")
	wireBreakerFails := flag.Int("wirebreakerfails", 5, "consecutive failed shard calls that open that shard's circuit breaker (0 disables)")
	wireBreakerCooldown := flag.Duration("wirebreakercooldown", 5*time.Second, "how long an open shard breaker fails fast before probing")
	adminToken := flag.String("admintoken", "", "bearer token authorising the POST /admin/* routes (empty disables them)")
	walDir := flag.String("waldir", "", "write-ahead log directory for durable streaming edge ingestion; enables POST /admin/edges and boot-time crash replay (monolithic CSR+ only)")
	driftBudget := flag.Float64("driftbudget", 0, "entrywise drift bound past which streamed edges mark answers degraded and trigger a live-graph rebuild (0 disables; requires -waldir)")
	cacheSize := flag.Int("cache", 1024, "top-k result cache entries (0 disables)")
	maxBatch := flag.Int("maxbatch", 32, "max query nodes coalesced per engine call")
	linger := flag.Duration("linger", 2*time.Millisecond, "max wait for co-batching a partial batch")
	workers := flag.Int("workers", 0, "concurrent engine calls (0 = GOMAXPROCS)")
	maxPending := flag.Int("pending", 1024, "admission queue bound; beyond it requests get 429")
	maxK := flag.Int("maxk", serve.DefaultMaxK, "server-side cap on requested k")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline (0 disables)")
	degradeRank := flag.Int("degraderank", 0, "truncated SVD rank served under pressure (0 disables graceful degradation)")
	degradeBudget := flag.Duration("degradebudget", 0, "degrade requests admitted with less deadline budget than this (0 disables)")
	degradeQueue := flag.Float64("degradequeue", serve.DefaultDegradeQueueFraction, "admission-queue fill fraction past which whole batches degrade")
	reloadRetries := flag.Int("reloadretries", 3, "reload attempts per trigger (1 = no retry)")
	reloadBackoff := flag.Duration("reloadbackoff", 50*time.Millisecond, "base backoff between reload retries (exponential, jittered)")
	breakerFails := flag.Int("breakerfails", 5, "consecutive failed reloads that open the circuit breaker (0 disables)")
	breakerCooldown := flag.Duration("breakercooldown", 10*time.Second, "how long an open breaker rejects reload triggers")
	flag.Parse()
	armFaultsFromEnv()

	// The wire modes serve without a local graph: a worker's identity is
	// its snapshot, a router's is its workers.
	if *shardWorker >= 0 && *shardAddrs != "" {
		log.Fatalln("csrserver: -shardworker and -shardaddrs are different processes; pick one")
	}
	if *walDir != "" && (*shardWorker >= 0 || *shardAddrs != "") {
		log.Fatalln("csrserver: -waldir needs the graph in-process; it is not supported in the wire modes (-shardworker/-shardaddrs)")
	}
	if *shardWorker >= 0 {
		runShardWorker(*shardWorker, *snapDir, *addr, *adminToken)
		return
	}
	if *shardAddrs != "" {
		var lru *cache.LRU
		if *cacheSize > 0 {
			lru = cache.New(*cacheSize)
		}
		runWireRouter(wireRouterConfig{
			addrs:      strings.Split(*shardAddrs, ","),
			addr:       *addr,
			adminToken: *adminToken,
			lru:        lru,
			serveCfg: serve.Config{
				MaxBatch:   *maxBatch,
				Linger:     *linger,
				Workers:    *workers,
				MaxPending: *maxPending,
				MaxK:       *maxK,
				Timeout:    *timeout,
				Cache:      lru,
				Degrade: serve.DegradeConfig{
					Rank:          *degradeRank,
					QueueFraction: *degradeQueue,
					MinBudget:     *degradeBudget,
				},
			},
			policy: reload.Policy{
				MaxAttempts:      *reloadRetries,
				BaseBackoff:      *reloadBackoff,
				BreakerThreshold: *breakerFails,
				BreakerCooldown:  *breakerCooldown,
			},
			opt: wire.Options{
				Timeout:          *wireTimeout,
				MaxAttempts:      *wireRetries,
				BaseBackoff:      *wireBackoff,
				HedgeQuantile:    *wireHedge,
				HedgeMinDelay:    *wireHedgeMin,
				BreakerThreshold: *wireBreakerFails,
				BreakerCooldown:  *wireBreakerCooldown,
				AdminToken:       *adminToken,
			},
		})
		return
	}

	g, err := loadGraph(*dataset, *scale, *graphPath, *n)
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	if *snapDir != "" && *algo != csrplus.AlgoCSRPlus {
		log.Fatalln("csrserver: -snapshots requires the CSR+ algorithm (only CSR+ has a persistable index)")
	}
	if *shards < 1 {
		log.Fatalln("csrserver: -shards must be >= 1")
	}
	if *shards > 1 && *algo != csrplus.AlgoCSRPlus {
		log.Fatalln("csrserver: -shards requires the CSR+ algorithm (only CSR+ factors partition by node range)")
	}
	if *walDir != "" {
		switch {
		case *algo != csrplus.AlgoCSRPlus:
			log.Fatalln("csrserver: -waldir requires the CSR+ algorithm (streamed edges maintain CSR+ factors)")
		case *shards > 1:
			log.Fatalln("csrserver: -waldir requires a monolithic server (-shards 1)")
		case *quantize != "":
			log.Fatalln("csrserver: -waldir maintains exact f64 factors; drop -quantize")
		}
	} else if *driftBudget > 0 {
		log.Fatalln("csrserver: -driftbudget requires -waldir")
	}
	var lru *cache.LRU
	if *cacheSize > 0 {
		lru = cache.New(*cacheSize)
	}
	src := &source{
		g:         g,
		algo:      *algo,
		rank:      *rank,
		damping:   *damping,
		indexPath: *indexPath,
		snapDir:   *snapDir,
		shards:    *shards,
		lru:       lru,
	}
	cand, eng, err := src.build(context.Background())
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	if *saveIndex != "" {
		if eng == nil {
			log.Fatalln("csrserver: -saveindex needs a full index, but the boot came from per-shard snapshots")
		}
		if err := eng.SaveIndexTier(*saveIndex, *quantize); err != nil {
			log.Fatalln("csrserver:", err)
		}
		log.Printf("index persisted to %s (tier %s)", *saveIndex, tierName(*quantize))
	}
	// Prime an empty snapshot directory with the boot index so the first
	// SIGHUP has a CURRENT to resolve and operators can roll back to the
	// generation the server came up with. Sharded servers prime one
	// snapshot directory per shard (<dir>/shard-<s>) instead.
	switch {
	case *snapDir != "" && src.router != nil && cand.Meta.Source != "shard-snapshots":
		ix, ok := eng.CoreIndex()
		if !ok {
			log.Fatalln("csrserver: sharded boot without a CSR+ index")
		}
		if err := publishShardSnapshots(*snapDir, ix, src.router.Plan()); err != nil {
			log.Fatalln("csrserver:", err)
		}
		log.Printf("boot index published as %d per-shard snapshots under %s", src.router.K(), *snapDir)
	case *snapDir != "" && src.router == nil && cand.Meta.Source != "snapshot":
		gen, path, err := eng.SaveSnapshotTier(*snapDir, *quantize)
		if err != nil {
			log.Fatalln("csrserver:", err)
		}
		cand.Meta.Path, cand.Meta.SnapshotGen = path, gen
		log.Printf("boot index published as snapshot generation %d (%s, tier %s)", gen, path, tierName(*quantize))
	}
	log.Printf("ready in %v (source=%s peak %d bytes)", cand.Meta.BuildTime, cand.Meta.Source, cand.Meta.PeakBytes)

	// Streaming ingestion: the WAL-backed service layers streamed edges
	// onto the boot graph and accounts the drift the boot factors accrue
	// against the live graph. It comes up cold here; replay runs in the
	// background below so /readyz tracks it honestly.
	var ing *ingest.Service
	if *walDir != "" {
		if ing, err = setupIngest(g, eng, cand, *walDir, *driftBudget); err != nil {
			log.Fatalln("csrserver:", err)
		}
	}

	// NewRanked: engine passes reuse a pooled n x |Q| scratch matrix and
	// see the batch context (an abandoned batch stops mid-pass); engines
	// with rank structure additionally serve truncated under pressure.
	sv := serve.NewRanked(serve.Ranked{
		N:     cand.N,
		Rank:  cand.Rank,
		Bound: cand.Bound,
		Query: cand.RankQuery,
		Drift: cand.Drift,
	}, serve.Config{
		MaxBatch:   *maxBatch,
		Linger:     *linger,
		Workers:    *workers,
		MaxPending: *maxPending,
		MaxK:       *maxK,
		Timeout:    *timeout,
		Cache:      lru,
		Degrade: serve.DegradeConfig{
			Rank:          *degradeRank,
			QueueFraction: *degradeQueue,
			MinBudget:     *degradeBudget,
		},
	})
	if src.router != nil {
		sv.Metrics().SetShards(src.router.K())
	}
	loadFn := src.loader()
	if ing != nil {
		loadFn = ingestLoader(src, ing)
	}
	man := reload.NewWithPolicy(sv, loadFn, cand.Meta, reload.Policy{
		MaxAttempts:      *reloadRetries,
		BaseBackoff:      *reloadBackoff,
		BreakerThreshold: *breakerFails,
		BreakerCooldown:  *breakerCooldown,
	})
	// The boot generation may pin a snapshot mapping too; the Manager
	// frees it after the first successful reload swaps it out.
	man.SetBootRelease(cand.Release)
	if ing != nil {
		ing.SetRebuildTrigger(func() {
			log.Println("csrserver: drift budget exceeded, rebuilding from the live graph ...")
			if _, err := reloadAndCommit(context.Background(), man, ing); err != nil {
				log.Println("csrserver: drift rebuild failed:", err)
			}
		})
		// Replay off the serving path: the listener comes up immediately,
		// /readyz reports not-ready and /admin/edges 503s until the tail is
		// back inside the graph. A log the boot factors can't replay onto
		// is fatal — serving would silently drop acknowledged edges.
		go func() {
			start := time.Now()
			if err := ing.Recover(); err != nil {
				log.Fatalln("csrserver: WAL recovery failed:", err)
			}
			st := ing.Stats()
			log.Printf("csrserver: WAL replay complete in %v (seq %d, drift %.3g)", time.Since(start), st.LastSeq, st.Drift)
			ing.TriggerIfExceeded()
		}()
	}
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go reloadOnHUP(hup, man, ing)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(man, sv, lru, *adminToken, src.router, ing),
		ReadHeaderTimeout: 5 * time.Second,
	}
	serveAndWait(srv, sv, fmt.Sprintf("server (maxbatch=%d linger=%v)", *maxBatch, *linger))
}

// source describes where index generations come from. build runs once at
// boot and once per reload, off the serving path; the precedence mirrors
// the flags: a snapshot directory's CURRENT pointer wins, then a pinned
// -index file, then an in-process precompute over the graph.
type source struct {
	g         *csrplus.Graph
	algo      string
	rank      int
	damping   float64
	indexPath string
	snapDir   string

	// shards > 1 routes serving through a scatter-gather router; the
	// router persists across reloads (only shard factors roll), and lru is
	// invalidated on a partial roll so no cached answer outlives a shard
	// whose factors changed without a serve-generation bump.
	shards int
	router *shard.Router
	lru    *cache.LRU
}

// build produces the next engine generation plus its provenance. The
// engine handle is returned alongside the candidate because boot-time
// callers need it (-saveindex, snapshot priming); reloads only keep the
// candidate. Sharded sources may return a nil engine (a boot straight
// from per-shard snapshots never materialises the monolithic index).
func (s *source) build(ctx context.Context) (*reload.Candidate, *csrplus.Engine, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if s.shards > 1 {
		return s.buildSharded(ctx)
	}
	return s.buildMono(ctx)
}

// buildMono is the monolithic path: one engine serves the whole graph.
func (s *source) buildMono(ctx context.Context) (*reload.Candidate, *csrplus.Engine, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	var (
		eng  *csrplus.Engine
		meta reload.Meta
		err  error
	)
	switch {
	case s.snapDir != "" && snapshotAvailable(s.snapDir):
		log.Printf("loading snapshot directory %s over n=%d m=%d ...", s.snapDir, s.g.N(), s.g.M())
		var snap csrplus.RecoveredSnapshot
		eng, snap, err = csrplus.RecoverEngine(s.g, s.snapDir)
		if err == nil {
			if snap.Recovered {
				log.Printf("WARNING: CURRENT unservable, recovered to snapshot generation %d (%s) — investigate and re-publish", snap.Gen, snap.Path)
			}
			meta = reload.Meta{Source: "snapshot", Path: snap.Path, SnapshotGen: snap.Gen, Recovered: snap.Recovered}
		}
	case s.indexPath != "":
		log.Printf("loading index %s over n=%d m=%d ...", s.indexPath, s.g.N(), s.g.M())
		eng, err = csrplus.LoadEngine(s.g, s.indexPath)
		meta = reload.Meta{Source: "index", Path: s.indexPath}
	default:
		log.Printf("precomputing %s index over n=%d m=%d ...", s.algo, s.g.N(), s.g.M())
		eng, err = csrplus.NewEngine(s.g, csrplus.Options{Algorithm: s.algo, Rank: s.rank, Damping: s.damping})
		meta = reload.Meta{Source: "rebuild"}
	}
	if err != nil {
		return nil, nil, err
	}
	st := eng.Stats()
	meta.Algorithm, meta.N, meta.M, meta.Rank = st.Algorithm, st.N, st.M, st.Rank
	meta.BuildTime = time.Since(start)
	meta.PeakBytes = st.PeakBytes
	return &reload.Candidate{
		N:         st.N,
		Query:     eng.QueryInto,
		RankQuery: eng.QueryRankInto, // rank-aware generation: context + degradation
		Rank:      st.Rank,
		Bound:     eng.TruncationBound,
		Meta:      meta,
		// Engines loaded from a v2 snapshot pin a memory mapping; the
		// Manager releases it only after a later generation has swapped
		// in and the old batches drained.
		Release: func() { _ = eng.Close() },
	}, eng, nil
}

// buildSharded produces the next sharded generation. Sources, in
// precedence order: per-shard snapshot directories (<snapDir>/shard-<s>,
// each with its own index-<gen>.csrx + CURRENT) when every slot
// resolves, else a full monolithic build (buildMono's precedence) sliced
// by node range. The first build assembles the router; every later build
// is a rolling shard-by-shard swap into it — load, validate, swap one
// slot at a time, so a reload never has more than one shard's worth of
// the index in motion and a failure leaves a mixed-generation router
// that still answers every query exactly.
func (s *source) buildSharded(ctx context.Context) (*reload.Candidate, *csrplus.Engine, error) {
	start := time.Now()
	if s.snapDir != "" && shardSnapshotsAvailable(s.snapDir, s.shards) {
		cand, err := s.buildFromShardSnapshots(ctx, start)
		return cand, nil, err
	}
	cand, eng, err := s.buildMono(ctx)
	if err != nil {
		return nil, nil, err
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		return nil, nil, fmt.Errorf("-shards requires the CSR+ algorithm")
	}
	if s.router == nil {
		rt, err := shard.NewRouterFromIndex(ix, s.shards)
		if err != nil {
			return nil, nil, err
		}
		s.router = rt
	} else {
		swapped, err := reload.RollShards(ctx, s.router, func(_ context.Context, _, lo, hi int) (*core.IndexShard, error) {
			return ix.Shard(lo, hi)
		})
		if err != nil {
			s.invalidateAfterPartialRoll(swapped)
			return nil, nil, err
		}
	}
	meta := cand.Meta
	meta.Shards = s.router.K()
	meta.BuildTime = time.Since(start)
	sc := s.shardCandidate(meta)
	// The router's shards COPY the mono index's factors (core.Shard
	// detaches from mappings), so the mono engine — possibly backed by a
	// mapped snapshot — can be released once this generation retires;
	// boot-time uses of eng (-saveindex, snapshot priming) all happen
	// before the first reload could trigger that.
	sc.Release = func() { _ = eng.Close() }
	return sc, eng, nil
}

// buildFromShardSnapshots loads every slot from its own snapshot
// directory. On the first build it assembles the router from the loaded
// shards (their ranges define the plan); on reloads it rolls them in
// slot by slot.
func (s *source) buildFromShardSnapshots(ctx context.Context, start time.Time) (*reload.Candidate, error) {
	loadSlot := func(slot int) (*core.IndexShard, error) {
		dir := core.ShardDir(s.snapDir, slot)
		sh, snap, recovered, err := core.RecoverShardSnapshot(dir)
		if err != nil {
			return nil, err
		}
		if recovered {
			log.Printf("WARNING: shard %d CURRENT unservable, recovered to snapshot generation %d (%s) — investigate and re-publish", slot, snap.Gen, snap.Path)
		}
		if sh.N() != s.g.N() {
			return nil, fmt.Errorf("shard %d snapshot built for %d nodes, graph has %d", slot, sh.N(), s.g.N())
		}
		return sh, nil
	}
	if s.router == nil {
		shards := make([]*core.IndexShard, s.shards)
		for slot := range shards {
			var err error
			if shards[slot], err = loadSlot(slot); err != nil {
				return nil, err
			}
		}
		rt, err := shard.NewRouter(shards)
		if err != nil {
			return nil, err
		}
		s.router = rt
	} else {
		swapped, err := reload.RollShards(ctx, s.router, func(_ context.Context, slot, _, _ int) (*core.IndexShard, error) {
			return loadSlot(slot)
		})
		if err != nil {
			s.invalidateAfterPartialRoll(swapped)
			return nil, err
		}
	}
	meta := reload.Meta{
		Source:    "shard-snapshots",
		Path:      s.snapDir,
		Algorithm: csrplus.AlgoCSRPlus,
		N:         s.router.N(),
		M:         s.g.M(),
		Rank:      s.router.Rank(),
		Shards:    s.router.K(),
		BuildTime: time.Since(start),
	}
	return s.shardCandidate(meta), nil
}

// shardCandidate wraps the router as a reload candidate. The closures
// are rebuilt each reload so the Manager's swap installs a fresh serve
// generation — that generation bump is what invalidates every cached
// result computed before the roll.
func (s *source) shardCandidate(meta reload.Meta) *reload.Candidate {
	rt := s.router
	return &reload.Candidate{
		N:         rt.N(),
		Query:     rt.QueryInto,
		RankQuery: rt.QueryRankInto,
		Rank:      rt.Rank(),
		Bound:     rt.TruncationBound,
		Meta:      meta,
	}
}

// invalidateAfterPartialRoll clears the result cache when a rolling
// reload failed after swapping at least one shard: the serve generation
// never bumped (the reload errored before the Manager's swap), but some
// shards now answer from new factors, so pre-roll cache entries could
// otherwise be served against a changed index.
func (s *source) invalidateAfterPartialRoll(swapped int) {
	if swapped > 0 && s.lru != nil {
		s.lru.Clear()
		log.Printf("csrserver: rolling reload failed after %d shard swap(s); result cache cleared", swapped)
	}
}

// shardSnapshotsAvailable reports whether every one of the k per-shard
// snapshot directories under dir can resolve a snapshot. All-or-nothing:
// a partially published set falls back to a full rebuild rather than
// mixing snapshot shards with rebuild shards in one boot.
func shardSnapshotsAvailable(dir string, k int) bool {
	for s := 0; s < k; s++ {
		if !snapshotAvailable(core.ShardDir(dir, s)) {
			return false
		}
	}
	return true
}

// publishShardSnapshots slices ix by plan and publishes each slice as
// the next generation of its shard directory.
func publishShardSnapshots(dir string, ix *core.Index, plan shard.Plan) error {
	for s := 0; s < plan.K(); s++ {
		lo, hi := plan.Range(s)
		sh, err := ix.Shard(lo, hi)
		if err != nil {
			return err
		}
		if _, _, err := core.WriteShardSnapshot(core.ShardDir(dir, s), sh); err != nil {
			return err
		}
	}
	return nil
}

// snapshotAvailable reports whether dir holds anything a boot could
// serve — a resolvable CURRENT or, failing that, any index-<gen>.csrx
// file crash recovery could fall back to. An empty or still-
// unprovisioned directory falls through to the other sources instead of
// failing the boot.
func snapshotAvailable(dir string) bool {
	if _, _, err := core.CurrentSnapshot(dir); err == nil {
		return true
	}
	snaps, err := core.ListSnapshots(dir)
	return err == nil && len(snaps) > 0
}

// loader adapts build for the reload manager.
func (s *source) loader() reload.LoadFunc {
	return func(ctx context.Context) (*reload.Candidate, error) {
		cand, _, err := s.build(ctx)
		return cand, err
	}
}

// tierName renders the -quantize flag value for logs ("" is the exact
// f64 tier).
func tierName(q string) string {
	if q == "" {
		return "f64"
	}
	return q
}

// reloadOnHUP runs one reload per SIGHUP — the operator's signal that a
// new snapshot was published (or that the graph should be re-indexed).
// Failures are logged and the previous generation keeps serving. svc is
// the streaming-ingestion service when one is configured (nil otherwise);
// a successful operator reload commits its drift baseline like a
// drift-triggered one would.
func reloadOnHUP(ch <-chan os.Signal, man *reload.Manager, svc *ingest.Service) {
	for range ch {
		log.Println("csrserver: SIGHUP, reloading index ...")
		st, err := reloadAndCommit(context.Background(), man, svc)
		if err != nil {
			log.Println("csrserver: reload failed:", err)
			continue
		}
		log.Printf("csrserver: serving generation %d (source=%s path=%s build=%v)",
			st.Generation, st.Source, st.Path, time.Duration(st.BuildSeconds*float64(time.Second)))
	}
}

func loadGraph(dataset string, scale int64, graphPath string, n int) (*csrplus.Graph, error) {
	switch {
	case dataset != "" && graphPath != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case dataset != "":
		return csrplus.GenerateDataset(dataset, scale)
	case graphPath != "":
		if n <= 0 {
			return nil, fmt.Errorf("-graph requires -n")
		}
		return csrplus.LoadGraph(graphPath, n)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

// newMux wires the HTTP routes: query traffic goes through the serve
// layer sv; the reload manager man answers /stats and the /admin routes.
// Split from main so the handlers are testable with httptest. adminToken
// guards the POST /admin/* routes; empty disables them. rt is the
// scatter-gather router when -shards > 1 (nil otherwise) and only adds
// per-shard detail to /stats and /admin/index — their unsharded shapes
// are unchanged. svc is the streaming-ingestion service when -waldir is
// set (nil otherwise): it registers POST /admin/edges, gates /readyz on
// WAL replay, and adds an "ingest" section to /stats.
func newMux(man *reload.Manager, sv *serve.Server, lru *cache.LRU, adminToken string, rt *shard.Router, svc *ingest.Service) *http.ServeMux {
	mux := http.NewServeMux()
	// /health and /healthz are liveness: the process is up and able to
	// answer HTTP. They stay 200 through failed reloads and degraded mode
	// — restarting the process would not fix either.
	liveness := func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
	mux.HandleFunc("/health", liveness)
	mux.HandleFunc("/healthz", liveness)
	// /readyz is readiness: a generation is serving and the reload
	// breaker is closed. An open breaker means the index source is
	// persistently broken — traffic still gets answers from the old
	// generation, but orchestrators should stop preferring this replica.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		st := man.Current()
		b := man.Breaker()
		body := map[string]interface{}{
			"generation":     st.Generation,
			"source":         st.Source,
			"snapshot_gen":   st.SnapshotGen,
			"recovered":      st.Recovered,
			"reload_breaker": b,
		}
		if svc != nil {
			body["ingest_ready"] = svc.Ready()
		}
		switch {
		case st.Generation == 0:
			body["status"] = "no generation"
			writeJSON(w, http.StatusServiceUnavailable, body)
		case svc != nil && !svc.Ready():
			// A generation is serving but acknowledged edges are still
			// being replayed: answers would silently miss them.
			body["status"] = "ingest replay in progress"
			writeJSON(w, http.StatusServiceUnavailable, body)
		case b.Open:
			body["status"] = "reload breaker open"
			writeJSON(w, http.StatusServiceUnavailable, body)
		default:
			body["status"] = "ready"
			writeJSON(w, http.StatusOK, body)
		}
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := man.Current()
		body := map[string]interface{}{
			"algorithm":          st.Algorithm,
			"n":                  st.N,
			"m":                  st.M,
			"generation":         st.Generation,
			"source":             st.Source,
			"precompute_seconds": st.BuildSeconds,
			"peak_bytes":         st.PeakBytes,
			"serving":            sv.Metrics().Snapshot(),
			"reload_breaker":     man.Breaker(),
		}
		if lru != nil {
			hits, misses := lru.Stats()
			body["cache_hits"] = hits
			body["cache_misses"] = misses
			body["cache_entries"] = lru.Len()
		}
		if rt != nil {
			body["shards"] = rt.Status()
		}
		if svc != nil {
			body["ingest"] = svc.Stats()
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/admin/index", func(w http.ResponseWriter, r *http.Request) {
		st := man.Current()
		if rt == nil {
			writeJSON(w, http.StatusOK, st)
			return
		}
		// Re-marshal the status struct into a map so the per-shard
		// generations ride along without changing the unsharded shape.
		raw, err := json.Marshal(st)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		body := map[string]interface{}{}
		if err := json.Unmarshal(raw, &body); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		body["shards"] = rt.Status()
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("reload requires POST"))
			return
		}
		if !auth.Require(w, r, adminToken, failAuth) {
			return
		}
		st, err := reloadAndCommit(r.Context(), man, svc)
		switch {
		case errors.Is(err, reload.ErrCoalesced):
			// The trigger was folded into the in-flight reload's pending
			// re-run: accepted, will happen, nothing for the caller to do.
			writeJSON(w, http.StatusAccepted, map[string]interface{}{
				"status": "coalesced", "current": st,
			})
		case errors.Is(err, reload.ErrBreakerOpen):
			w.Header().Set("Retry-After", "10")
			writeError(w, http.StatusServiceUnavailable, err)
		case err != nil:
			writeError(w, http.StatusInternalServerError, err)
		default:
			writeJSON(w, http.StatusOK, st)
		}
	})
	// /admin/edges is the durable ingestion door: the batch is validated,
	// WAL-appended (the 200 means it survived fsync), and applied to the
	// live graph before the response. It exists only when -waldir is set.
	if svc != nil {
		mux.HandleFunc("/admin/edges", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				w.Header().Set("Allow", http.MethodPost)
				writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("edge ingestion requires POST"))
				return
			}
			if !auth.Require(w, r, adminToken, failAuth) {
				return
			}
			var req struct {
				Edges []ingest.Edge `json:"edges"`
			}
			dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
			if err := dec.Decode(&req); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad ingest body: %v", err))
				return
			}
			seq, drift, err := svc.Append(req.Edges)
			switch {
			case errors.Is(err, ingest.ErrNotReady):
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, err)
			case errors.Is(err, ingest.ErrBadEdge):
				writeError(w, http.StatusBadRequest, err)
			case err != nil:
				writeError(w, http.StatusInternalServerError, err)
			default:
				writeJSON(w, http.StatusOK, map[string]interface{}{
					"seq":         seq,
					"drift_bound": drift,
				})
			}
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sv.Metrics().Snapshot())
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		queries, err := queryNodes(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			if k, err = strconv.Atoi(ks); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
				return
			}
		}
		res, err := sv.Search(r.Context(), queries, k)
		if err != nil {
			writeServeError(w, err)
			return
		}
		body := map[string]interface{}{"queries": queries, "matches": res.Matches}
		if res.Cached {
			body["cached"] = true
		}
		if res.Info.Degraded {
			body["degraded"] = res.Info
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/similarity", func(w http.ResponseWriter, r *http.Request) {
		queries, err := queryNodes(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		targets, err := parseIDs(r.URL.Query().Get("targets"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		res, err := sv.Score(r.Context(), queries, targets)
		if err != nil {
			writeServeError(w, err)
			return
		}
		body := map[string]interface{}{"pairs": res.Pairs}
		if res.Info.Degraded {
			body["degraded"] = res.Info
		}
		writeJSON(w, http.StatusOK, body)
	})
	return mux
}

// writeServeError maps the serve layer's typed errors onto HTTP status
// codes: shed load is 429 (retryable), deadline expiry 504, shutdown 503,
// validation 400.
func writeServeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, serve.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, serve.ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func queryNodes(r *http.Request) ([]int, error) {
	q := r.URL.Query()
	if s := q.Get("nodes"); s != "" {
		return parseIDs(s)
	}
	if s := q.Get("node"); s != "" {
		return parseIDs(s)
	}
	return nil, fmt.Errorf("node or nodes parameter required")
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty id list")
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Println("csrserver: encode:", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// failAuth adapts writeError to the shared Bearer-auth helper.
func failAuth(w http.ResponseWriter, status int, msg string) {
	writeError(w, status, errors.New(msg))
}

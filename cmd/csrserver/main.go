// Command csrserver serves CoSimRank similarity search over HTTP — the
// "online multi-source query" phase of CSR+ as a long-lived service: the
// index is precomputed once at startup, queries are answered from it.
//
// Usage:
//
//	csrserver -dataset WT -addr :8080
//	csrserver -graph edges.txt -n 100000 -r 8
//
// Endpoints:
//
//	GET /health                       liveness
//	GET /stats                        graph + engine counters
//	GET /topk?node=17&k=10            top-k most similar to one node
//	GET /topk?nodes=17,42&k=10        top-k by aggregate similarity
//	GET /similarity?node=17&targets=1,2,3   raw scores for chosen pairs
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"csrplus"

	"csrplus/internal/cache"
)

func main() {
	dataset := flag.String("dataset", "", "paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = default)")
	graphPath := flag.String("graph", "", "edge-list file")
	n := flag.Int("n", 0, "node count for -graph")
	algo := flag.String("algo", csrplus.AlgoCSRPlus, "algorithm")
	rank := flag.Int("r", 5, "SVD rank / iteration count")
	damping := flag.Float64("c", 0.6, "damping factor")
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "load a persisted CSR+ index instead of precomputing")
	saveIndex := flag.String("saveindex", "", "persist the precomputed CSR+ index to this path")
	cacheSize := flag.Int("cache", 1024, "top-k result cache entries (0 disables)")
	flag.Parse()

	g, err := loadGraph(*dataset, *scale, *graphPath, *n)
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	var eng *csrplus.Engine
	if *indexPath != "" {
		log.Printf("loading index %s over n=%d m=%d ...", *indexPath, g.N(), g.M())
		eng, err = csrplus.LoadEngine(g, *indexPath)
	} else {
		log.Printf("precomputing %s index over n=%d m=%d ...", *algo, g.N(), g.M())
		eng, err = csrplus.NewEngine(g, csrplus.Options{Algorithm: *algo, Rank: *rank, Damping: *damping})
	}
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	if *saveIndex != "" {
		if err := eng.SaveIndex(*saveIndex); err != nil {
			log.Fatalln("csrserver:", err)
		}
		log.Printf("index persisted to %s", *saveIndex)
	}
	st := eng.Stats()
	log.Printf("ready in %v (peak %d bytes)", st.PrecomputeTime, st.PeakBytes)

	var lru *cache.LRU
	if *cacheSize > 0 {
		lru = cache.New(*cacheSize)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(eng, lru),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalln("csrserver:", err)
		}
	}()
	log.Printf("listening on %s", *addr)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Println("csrserver: shutdown:", err)
	}
}

func loadGraph(dataset string, scale int64, graphPath string, n int) (*csrplus.Graph, error) {
	switch {
	case dataset != "" && graphPath != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case dataset != "":
		return csrplus.GenerateDataset(dataset, scale)
	case graphPath != "":
		if n <= 0 {
			return nil, fmt.Errorf("-graph requires -n")
		}
		return csrplus.LoadGraph(graphPath, n)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

// newMux wires the HTTP routes around one engine and an optional top-k
// result cache (nil disables caching). Split from main so the handlers are
// testable with httptest.
func newMux(eng *csrplus.Engine, lru *cache.LRU) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := eng.Stats()
		body := map[string]interface{}{
			"algorithm":          st.Algorithm,
			"n":                  st.N,
			"m":                  st.M,
			"precompute_seconds": st.PrecomputeTime.Seconds(),
			"peak_bytes":         st.PeakBytes,
		}
		if lru != nil {
			hits, misses := lru.Stats()
			body["cache_hits"] = hits
			body["cache_misses"] = misses
			body["cache_entries"] = lru.Len()
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		queries, err := queryNodes(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			if k, err = strconv.Atoi(ks); err != nil || k < 1 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
				return
			}
		}
		var cacheKey string
		if lru != nil {
			ids := make([]string, len(queries))
			for i, q := range queries {
				ids[i] = strconv.Itoa(q)
			}
			cacheKey = fmt.Sprintf("topk|%s|%d", strings.Join(ids, ","), k)
			if cached, ok := lru.Get(cacheKey); ok {
				writeJSON(w, http.StatusOK, map[string]interface{}{
					"queries": queries, "matches": cached, "cached": true})
				return
			}
		}
		var matches []csrplus.Match
		if len(queries) == 1 {
			matches, err = eng.TopK(queries[0], k)
		} else {
			matches, err = eng.TopKMulti(queries, k)
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if lru != nil {
			lru.Put(cacheKey, matches)
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"queries": queries, "matches": matches})
	})
	mux.HandleFunc("/similarity", func(w http.ResponseWriter, r *http.Request) {
		queries, err := queryNodes(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		targets, err := parseIDs(r.URL.Query().Get("targets"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cols, err := eng.Query(queries)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		type pair struct {
			Query  int     `json:"query"`
			Target int     `json:"target"`
			Score  float64 `json:"score"`
		}
		out := make([]pair, 0, len(queries)*len(targets))
		for j, q := range queries {
			for _, tgt := range targets {
				if tgt < 0 || tgt >= len(cols[j]) {
					writeError(w, http.StatusBadRequest, fmt.Errorf("target %d out of range", tgt))
					return
				}
				out = append(out, pair{q, tgt, cols[j][tgt]})
			}
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"pairs": out})
	})
	return mux
}

func queryNodes(r *http.Request) ([]int, error) {
	q := r.URL.Query()
	if s := q.Get("nodes"); s != "" {
		return parseIDs(s)
	}
	if s := q.Get("node"); s != "" {
		return parseIDs(s)
	}
	return nil, fmt.Errorf("node or nodes parameter required")
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty id list")
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Println("csrserver: encode:", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

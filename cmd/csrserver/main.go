// Command csrserver serves CoSimRank similarity search over HTTP — the
// "online multi-source query" phase of CSR+ as a long-lived service: the
// index is precomputed once at startup, queries are answered from it.
//
// Requests are routed through internal/serve, which dynamically batches
// concurrent queries into multi-source engine passes (the paper's
// O(r(m + n(r + |Q|))) bound makes the marginal query nearly free),
// bounds concurrency with a worker pool, sheds load when the admission
// queue fills (HTTP 429), enforces per-request deadlines (504), and
// drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	csrserver -dataset WT -addr :8080
//	csrserver -graph edges.txt -n 100000 -r 8
//
// Endpoints:
//
//	GET /health                       liveness
//	GET /stats                        graph + engine + serving counters
//	GET /metrics                      serving metrics (batching, queue, cache)
//	GET /topk?node=17&k=10            top-k most similar to one node
//	GET /topk?nodes=17,42&k=10        top-k by aggregate similarity
//	GET /similarity?node=17&targets=1,2,3   raw scores for chosen pairs
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"csrplus"

	"csrplus/internal/cache"
	"csrplus/internal/serve"
)

func main() {
	dataset := flag.String("dataset", "", "paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = default)")
	graphPath := flag.String("graph", "", "edge-list file")
	n := flag.Int("n", 0, "node count for -graph")
	algo := flag.String("algo", csrplus.AlgoCSRPlus, "algorithm")
	rank := flag.Int("r", 5, "SVD rank / iteration count")
	damping := flag.Float64("c", 0.6, "damping factor")
	addr := flag.String("addr", ":8080", "listen address")
	indexPath := flag.String("index", "", "load a persisted CSR+ index instead of precomputing")
	saveIndex := flag.String("saveindex", "", "persist the precomputed CSR+ index to this path")
	cacheSize := flag.Int("cache", 1024, "top-k result cache entries (0 disables)")
	maxBatch := flag.Int("maxbatch", 32, "max query nodes coalesced per engine call")
	linger := flag.Duration("linger", 2*time.Millisecond, "max wait for co-batching a partial batch")
	workers := flag.Int("workers", 0, "concurrent engine calls (0 = GOMAXPROCS)")
	maxPending := flag.Int("pending", 1024, "admission queue bound; beyond it requests get 429")
	maxK := flag.Int("maxk", serve.DefaultMaxK, "server-side cap on requested k")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline (0 disables)")
	flag.Parse()

	g, err := loadGraph(*dataset, *scale, *graphPath, *n)
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	var eng *csrplus.Engine
	if *indexPath != "" {
		log.Printf("loading index %s over n=%d m=%d ...", *indexPath, g.N(), g.M())
		eng, err = csrplus.LoadEngine(g, *indexPath)
	} else {
		log.Printf("precomputing %s index over n=%d m=%d ...", *algo, g.N(), g.M())
		eng, err = csrplus.NewEngine(g, csrplus.Options{Algorithm: *algo, Rank: *rank, Damping: *damping})
	}
	if err != nil {
		log.Fatalln("csrserver:", err)
	}
	if *saveIndex != "" {
		if err := eng.SaveIndex(*saveIndex); err != nil {
			log.Fatalln("csrserver:", err)
		}
		log.Printf("index persisted to %s", *saveIndex)
	}
	st := eng.Stats()
	log.Printf("ready in %v (peak %d bytes)", st.PrecomputeTime, st.PeakBytes)

	var lru *cache.LRU
	if *cacheSize > 0 {
		lru = cache.New(*cacheSize)
	}
	// NewMat: engine passes reuse a pooled n x |Q| scratch matrix (CSR+
	// writes into it; other algorithms fall back to allocating).
	sv := serve.NewMat(g.N(), eng.QueryInto, serve.Config{
		MaxBatch:   *maxBatch,
		Linger:     *linger,
		Workers:    *workers,
		MaxPending: *maxPending,
		MaxK:       *maxK,
		Timeout:    *timeout,
		Cache:      lru,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           newMux(eng, sv, lru),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalln("csrserver:", err)
		}
	}()
	log.Printf("listening on %s (maxbatch=%d linger=%v)", *addr, *maxBatch, *linger)

	// SIGTERM is what container orchestrators send; SIGINT covers ^C.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Println("csrserver: shutting down, draining in-flight batches ...")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Println("csrserver: shutdown:", err)
	}
	sv.Close() // stop admitting, flush pending batches, wait for workers
	log.Println("csrserver: drained")
}

func loadGraph(dataset string, scale int64, graphPath string, n int) (*csrplus.Graph, error) {
	switch {
	case dataset != "" && graphPath != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case dataset != "":
		return csrplus.GenerateDataset(dataset, scale)
	case graphPath != "":
		if n <= 0 {
			return nil, fmt.Errorf("-graph requires -n")
		}
		return csrplus.LoadGraph(graphPath, n)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

// newMux wires the HTTP routes: query traffic goes through the serve
// layer sv; eng and lru are only consulted for /stats. Split from main so
// the handlers are testable with httptest.
func newMux(eng *csrplus.Engine, sv *serve.Server, lru *cache.LRU) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := eng.Stats()
		body := map[string]interface{}{
			"algorithm":          st.Algorithm,
			"n":                  st.N,
			"m":                  st.M,
			"precompute_seconds": st.PrecomputeTime.Seconds(),
			"peak_bytes":         st.PeakBytes,
			"serving":            sv.Metrics().Snapshot(),
		}
		if lru != nil {
			hits, misses := lru.Stats()
			body["cache_hits"] = hits
			body["cache_misses"] = misses
			body["cache_entries"] = lru.Len()
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, sv.Metrics().Snapshot())
	})
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		queries, err := queryNodes(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		k := 10
		if ks := r.URL.Query().Get("k"); ks != "" {
			if k, err = strconv.Atoi(ks); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
				return
			}
		}
		matches, cached, err := sv.TopK(r.Context(), queries, k)
		if err != nil {
			writeServeError(w, err)
			return
		}
		body := map[string]interface{}{"queries": queries, "matches": matches}
		if cached {
			body["cached"] = true
		}
		writeJSON(w, http.StatusOK, body)
	})
	mux.HandleFunc("/similarity", func(w http.ResponseWriter, r *http.Request) {
		queries, err := queryNodes(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		targets, err := parseIDs(r.URL.Query().Get("targets"))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		pairs, err := sv.Similarity(r.Context(), queries, targets)
		if err != nil {
			writeServeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"pairs": pairs})
	})
	return mux
}

// writeServeError maps the serve layer's typed errors onto HTTP status
// codes: shed load is 429 (retryable), deadline expiry 504, shutdown 503,
// validation 400.
func writeServeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, serve.ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, serve.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, serve.ErrBadRequest):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func queryNodes(r *http.Request) ([]int, error) {
	q := r.URL.Query()
	if s := q.Get("nodes"); s != "" {
		return parseIDs(s)
	}
	if s := q.Get("node"); s != "" {
		return parseIDs(s)
	}
	return nil, fmt.Errorf("node or nodes parameter required")
}

func parseIDs(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("empty id list")
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad node id %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Println("csrserver: encode:", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"

	"csrplus"

	"csrplus/internal/core"

	"csrplus/internal/cache"
	"csrplus/internal/reload"
	"csrplus/internal/serve"
	"csrplus/internal/shard"
)

func testGraph(t testing.TB) *csrplus.Graph {
	t.Helper()
	g, err := csrplus.NewGraph(6, [][2]int{
		{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
		{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testEngine(t testing.TB) *csrplus.Engine {
	t.Helper()
	eng, err := csrplus.NewEngine(testGraph(t), csrplus.Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// testManager wraps an engine in a reload.Manager the way main does; its
// loader rebuilds a candidate over the same engine, so reload tests can
// advance the generation without paying for a second precompute.
func testManager(tb testing.TB, eng *csrplus.Engine, sv *serve.Server) *reload.Manager {
	tb.Helper()
	st := eng.Stats()
	meta := reload.Meta{
		Source: "boot", Algorithm: st.Algorithm, N: st.N, M: st.M, Rank: st.Rank,
		BuildTime: st.PrecomputeTime, PeakBytes: st.PeakBytes,
	}
	load := func(context.Context) (*reload.Candidate, error) {
		m := meta
		m.Source = "rebuild"
		return &reload.Candidate{N: st.N, Query: eng.QueryInto, Meta: m}, nil
	}
	return reload.New(sv, load, meta)
}

// testServer wires a real engine through the serve layer the way main
// does. Linger < 0 flushes immediately so sequential tests stay fast.
func testServer(t *testing.T, cfg serve.Config, lru *cache.LRU) *httptest.Server {
	return testServerAuth(t, cfg, lru, "")
}

func testServerAuth(t *testing.T, cfg serve.Config, lru *cache.LRU, adminToken string) *httptest.Server {
	t.Helper()
	eng := testEngine(t)
	if cfg.Linger == 0 {
		cfg.Linger = -1
	}
	cfg.Cache = lru
	sv := serve.New(6, eng.Query, cfg)
	t.Cleanup(sv.Close)
	srv := httptest.NewServer(newMux(testManager(t, eng, sv), sv, lru, adminToken, nil, nil))
	t.Cleanup(srv.Close)
	return srv
}

// doReq issues a request with an optional bearer token.
func doReq(t *testing.T, srv *httptest.Server, method, path, token string) (int, map[string]interface{}) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func get(t *testing.T, srv *httptest.Server, path string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealth(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/health")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("code=%d body=%v", code, body)
	}
}

func TestStats(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/stats")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	if body["algorithm"] != "CSR+" || body["n"].(float64) != 6 {
		t.Fatalf("body=%v", body)
	}
	if _, ok := body["serving"].(map[string]interface{}); !ok {
		t.Fatalf("stats missing serving section: %v", body)
	}
}

func TestTopKSingle(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/topk?node=1&k=3")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	matches := body["matches"].([]interface{})
	if len(matches) != 3 {
		t.Fatalf("matches=%v", matches)
	}
	first := matches[0].(map[string]interface{})
	if int(first["node"].(float64)) != 3 {
		t.Fatalf("top match %v, want node 3", first)
	}
}

func TestTopKMulti(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/topk?nodes=1,3&k=2")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	if len(body["matches"].([]interface{})) != 2 {
		t.Fatalf("body=%v", body)
	}
}

func TestSimilarityPairs(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/similarity?node=1&targets=3,4")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	pairs := body["pairs"].([]interface{})
	if len(pairs) != 2 {
		t.Fatalf("pairs=%v", pairs)
	}
	p0 := pairs[0].(map[string]interface{})
	if p0["score"].(float64) <= 0 {
		t.Fatalf("pair score %v", p0)
	}
}

func TestBadRequests(t *testing.T) {
	srv := testServer(t, serve.Config{MaxK: 100}, nil)
	for _, path := range []string{
		"/topk",                         // missing node
		"/topk?node=zzz",                // unparsable id
		"/topk?node=99",                 // out of range
		"/topk?node=1&k=0",              // bad k
		"/topk?node=1&k=101",            // beyond server-side max k
		"/similarity?node=1",            // missing targets
		"/similarity?node=1&targets=99", // target out of range
	} {
		code, body := get(t, srv, path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: code=%d body=%v", path, code, body)
		}
		if body["error"] == "" {
			t.Fatalf("%s: no error message", path)
		}
	}
}

func TestKClampedToN(t *testing.T) {
	// k above n but below MaxK clamps to the candidate count instead of
	// erroring: 6-node graph, single query -> 5 matches.
	srv := testServer(t, serve.Config{MaxK: 100}, nil)
	code, body := get(t, srv, "/topk?node=1&k=50")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	if got := len(body["matches"].([]interface{})); got != 5 {
		t.Fatalf("got %d matches, want 5", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	if code, _ := get(t, srv, "/topk?node=1&k=3"); code != http.StatusOK {
		t.Fatal("warm-up query failed")
	}
	code, body := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	if body["requests_admitted"].(float64) < 1 || body["engine_batches"].(float64) < 1 {
		t.Fatalf("metrics=%v", body)
	}
	for _, key := range []string{"batch_occupancy", "latency_seconds", "queue_depth", "requests_shed"} {
		if _, ok := body[key]; !ok {
			t.Fatalf("metrics missing %q: %v", key, body)
		}
	}
}

func TestOverloadReturns429(t *testing.T) {
	eng := testEngine(t)
	gate := make(chan struct{})
	blocking := func(queries []int) ([][]float64, error) {
		<-gate
		return eng.Query(queries)
	}
	sv := serve.New(6, blocking, serve.Config{MaxBatch: 1, Linger: -1, MaxPending: 1, Workers: 1})
	srv := httptest.NewServer(newMux(testManager(t, eng, sv), sv, nil, "", nil, nil))
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer srv.Close()
	defer sv.Close()
	defer release()

	type result struct{ code int }
	results := make(chan result, 8)
	var wg sync.WaitGroup
	// Capacity with the worker gated is 3 (executing + dispatch-held +
	// queued); each sequential launch raises either admitted or shed, so
	// by the 4th a 429 is guaranteed.
	for i := 0; i < 4; i++ {
		admitted, shed := sv.Metrics().Admitted(), sv.Metrics().Shed()
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/topk?node=1&k=2")
			if err != nil {
				return
			}
			resp.Body.Close()
			results <- result{resp.StatusCode}
		}()
		deadline := time.Now().Add(5 * time.Second)
		for sv.Metrics().Admitted() == admitted && sv.Metrics().Shed() == shed {
			if time.Now().After(deadline) {
				t.Fatal("request neither admitted nor shed")
			}
			time.Sleep(200 * time.Microsecond)
		}
		if sv.Metrics().Shed() > 0 {
			break
		}
	}
	if sv.Metrics().Shed() == 0 {
		t.Fatal("no request was shed")
	}
	if got := (<-results).code; got != http.StatusTooManyRequests {
		t.Fatalf("shed request got HTTP %d, want 429", got)
	}
	release()
	wg.Wait()
}

func TestDeadlineReturns504(t *testing.T) {
	eng := testEngine(t)
	slow := func(queries []int) ([][]float64, error) {
		time.Sleep(100 * time.Millisecond)
		return eng.Query(queries)
	}
	sv := serve.New(6, slow, serve.Config{Linger: -1, Timeout: 5 * time.Millisecond})
	defer sv.Close()
	srv := httptest.NewServer(newMux(testManager(t, eng, sv), sv, nil, "", nil, nil))
	defer srv.Close()
	code, body := get(t, srv, "/topk?node=1&k=2")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("code=%d body=%v", code, body)
	}
}

func TestLoadGraphValidation(t *testing.T) {
	if _, err := loadGraph("", 0, "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadGraph("FB", 0, "x.txt", 5); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadGraph("", 0, "x.txt", 0); err == nil {
		t.Fatal("-graph without -n accepted")
	}
}

func TestTopKCachePath(t *testing.T) {
	lru := cache.New(8)
	srv := testServer(t, serve.Config{}, lru)
	code, first := get(t, srv, "/topk?node=1&k=2")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	if first["cached"] != nil {
		t.Fatal("first request marked cached")
	}
	code, second := get(t, srv, "/topk?node=1&k=2")
	if code != http.StatusOK || second["cached"] != true {
		t.Fatalf("second request not cached: %v", second)
	}
	// Same node, different k must miss.
	_, third := get(t, srv, "/topk?node=1&k=3")
	if third["cached"] == true {
		t.Fatal("different k hit the cache")
	}
	// Stats expose both the raw LRU counters and the serving metrics view.
	_, stats := get(t, srv, "/stats")
	if stats["cache_hits"].(float64) < 1 {
		t.Fatalf("stats = %v", stats)
	}
	serving := stats["serving"].(map[string]interface{})
	if serving["cache_hits"].(float64) < 1 {
		t.Fatalf("serving metrics missed the cache hit: %v", serving)
	}
}

// BenchmarkTopKHandler measures end-to-end request throughput of the
// /topk route, cached and uncached.
func BenchmarkTopKHandler(b *testing.B) {
	eng := testEngine(b)
	run := func(b *testing.B, lru *cache.LRU) {
		sv := serve.New(6, eng.Query, serve.Config{Linger: -1, Cache: lru})
		defer sv.Close()
		srv := httptest.NewServer(newMux(testManager(b, eng, sv), sv, lru, "", nil, nil))
		defer srv.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(srv.URL + "/topk?node=1&k=3")
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, cache.New(64)) })
}

func TestAdminIndexStatus(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/admin/index")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	if body["generation"].(float64) != 1 || body["source"] != "boot" {
		t.Fatalf("boot status = %v", body)
	}
	if body["algorithm"] != "CSR+" || body["n"].(float64) != 6 || body["rank"].(float64) != 3 {
		t.Fatalf("index meta = %v", body)
	}
}

func TestAdminReloadDisabledWithoutToken(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	// With no -admintoken the endpoint refuses even well-formed requests.
	code, body := doReq(t, srv, http.MethodPost, "/admin/reload", "anything")
	if code != http.StatusForbidden {
		t.Fatalf("code=%d body=%v", code, body)
	}
}

func TestAdminReloadAuthAndSwap(t *testing.T) {
	srv := testServerAuth(t, serve.Config{}, nil, "sesame")
	if code, _ := doReq(t, srv, http.MethodGet, "/admin/reload", "sesame"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload: code=%d", code)
	}
	if code, _ := doReq(t, srv, http.MethodPost, "/admin/reload", ""); code != http.StatusUnauthorized {
		t.Fatalf("missing token: code=%d", code)
	}
	if code, _ := doReq(t, srv, http.MethodPost, "/admin/reload", "wrong"); code != http.StatusForbidden {
		t.Fatalf("wrong token: code=%d", code)
	}
	// No auth failure may trigger a swap.
	if _, body := get(t, srv, "/admin/index"); body["generation"].(float64) != 1 {
		t.Fatalf("auth failures advanced the generation: %v", body)
	}
	code, body := doReq(t, srv, http.MethodPost, "/admin/reload", "sesame")
	if code != http.StatusOK {
		t.Fatalf("authorised reload: code=%d body=%v", code, body)
	}
	if body["generation"].(float64) != 2 || body["source"] != "rebuild" {
		t.Fatalf("reload status = %v", body)
	}
	// The new generation is visible on every status surface and still
	// answers queries.
	if _, body := get(t, srv, "/admin/index"); body["generation"].(float64) != 2 {
		t.Fatalf("/admin/index stale: %v", body)
	}
	_, stats := get(t, srv, "/stats")
	if stats["generation"].(float64) != 2 || stats["algorithm"] != "CSR+" {
		t.Fatalf("/stats after reload: %v", stats)
	}
	serving := stats["serving"].(map[string]interface{})
	if serving["reloads"].(float64) != 1 || serving["generation"].(float64) != 2 {
		t.Fatalf("serving metrics after reload: %v", serving)
	}
	if code, _ := get(t, srv, "/topk?node=1&k=3"); code != http.StatusOK {
		t.Fatal("queries broken after reload")
	}
}

func TestReloadOnHUP(t *testing.T) {
	eng := testEngine(t)
	sv := serve.NewMat(6, eng.QueryInto, serve.Config{Linger: -1})
	defer sv.Close()
	man := testManager(t, eng, sv)
	ch := make(chan os.Signal) // unbuffered: a send returns only once the loop is ready again
	done := make(chan struct{})
	go func() {
		reloadOnHUP(ch, man, nil)
		close(done)
	}()
	ch <- syscall.SIGHUP
	ch <- syscall.SIGHUP // accepted only after the first reload finished
	close(ch)
	<-done
	if got := man.Current().Generation; got != 3 {
		t.Fatalf("generation after two SIGHUPs = %d, want 3", got)
	}
}

// TestSourceSnapshotResolution covers main's boot-source precedence: a
// provisioned snapshot directory wins, an empty one falls back to an
// in-process rebuild.
func TestSourceSnapshotResolution(t *testing.T) {
	g := testGraph(t)
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := eng.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	src := &source{g: g, algo: csrplus.AlgoCSRPlus, rank: 3, snapDir: dir}
	cand, _, err := src.build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cand.Meta.Source != "snapshot" || cand.Meta.SnapshotGen != 1 || cand.Meta.Rank != 3 {
		t.Fatalf("snapshot boot meta = %+v", cand.Meta)
	}
	empty := &source{g: g, algo: csrplus.AlgoCSRPlus, rank: 3, snapDir: t.TempDir()}
	cand, _, err = empty.build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cand.Meta.Source != "rebuild" {
		t.Fatalf("empty snapshot dir: source = %q, want rebuild", cand.Meta.Source)
	}
}

// TestAdminReloadPicksUpNewSnapshot is the full operator workflow end to
// end: boot from a snapshot directory, publish a new generation into it,
// trigger an authenticated reload, and watch traffic move over.
func TestAdminReloadPicksUpNewSnapshot(t *testing.T) {
	g := testGraph(t)
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := eng.SaveSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	src := &source{g: g, algo: csrplus.AlgoCSRPlus, rank: 3, snapDir: dir}
	cand, _, err := src.build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sv := serve.NewMat(cand.N, cand.Query, serve.Config{Linger: -1})
	defer sv.Close()
	man := reload.New(sv, src.loader(), cand.Meta)
	srv := httptest.NewServer(newMux(man, sv, nil, "sesame", nil, nil))
	defer srv.Close()

	if _, _, err := eng.SaveSnapshot(dir); err != nil { // publish generation 2
		t.Fatal(err)
	}
	code, body := doReq(t, srv, http.MethodPost, "/admin/reload", "sesame")
	if code != http.StatusOK {
		t.Fatalf("reload: code=%d body=%v", code, body)
	}
	if body["source"] != "snapshot" || body["snapshot_gen"].(float64) != 2 || body["generation"].(float64) != 2 {
		t.Fatalf("reload status = %v", body)
	}
	if code, _ := get(t, srv, "/topk?node=1&k=3"); code != http.StatusOK {
		t.Fatal("queries broken after snapshot reload")
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	srv := testServer(t, serve.Config{}, nil)
	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz: code=%d body=%v", code, body)
	}
	code, body = get(t, srv, "/readyz")
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("readyz: code=%d body=%v", code, body)
	}
	if body["generation"].(float64) != 1 {
		t.Fatalf("readyz generation = %v", body["generation"])
	}
	if br, ok := body["reload_breaker"].(map[string]interface{}); !ok || br["open"] != false {
		t.Fatalf("readyz breaker = %v", body["reload_breaker"])
	}
}

// An open reload breaker must flip readiness to 503 while query traffic
// keeps being answered by the old generation.
func TestReadyzReportsOpenBreaker(t *testing.T) {
	eng := testEngine(t)
	sv := serve.NewMat(6, eng.QueryInto, serve.Config{Linger: -1})
	t.Cleanup(sv.Close)
	man := reload.NewWithPolicy(sv,
		func(context.Context) (*reload.Candidate, error) { return nil, errTestDown },
		reload.Meta{Source: "boot"},
		reload.Policy{MaxAttempts: 1, BreakerThreshold: 1, BreakerCooldown: time.Minute})
	srv := httptest.NewServer(newMux(man, sv, nil, "", nil, nil))
	t.Cleanup(srv.Close)

	if _, err := man.Reload(context.Background()); err == nil {
		t.Fatal("reload against a down source succeeded")
	}
	code, body := get(t, srv, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: code=%d body=%v", code, body)
	}
	if code, _ := get(t, srv, "/topk?node=1&k=3"); code != http.StatusOK {
		t.Fatal("old generation stopped answering while breaker open")
	}
	if code, _ := get(t, srv, "/healthz"); code != http.StatusOK {
		t.Fatal("liveness flipped with the breaker; only readiness should")
	}
}

var errTestDown = fmt.Errorf("snapshot source down")

// A degraded answer must carry its provenance through the HTTP layer.
func TestTopKDegradedTagging(t *testing.T) {
	eng := testEngine(t)
	st := eng.Stats()
	sv := serve.NewRanked(serve.Ranked{
		N: st.N, Rank: st.Rank, Bound: eng.TruncationBound, Query: eng.QueryRankInto,
	}, serve.Config{
		Linger: -1,
		// The server-imposed Timeout is the deadline the budget check
		// sees; with MinBudget above it, every request votes to degrade.
		Timeout: 5 * time.Second,
		Degrade: serve.DegradeConfig{Rank: 1, MinBudget: time.Hour},
	})
	t.Cleanup(sv.Close)
	srv := httptest.NewServer(newMux(testManager(t, eng, sv), sv, nil, "", nil, nil))
	t.Cleanup(srv.Close)

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/topk?node=1&k=3", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, err := http.DefaultClient.Do(req.WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("code=%d body=%v", resp.StatusCode, body)
	}
	deg, ok := body["degraded"].(map[string]interface{})
	if !ok {
		t.Fatalf("deadline-pressured response not tagged: %v", body)
	}
	if deg["effective_rank"].(float64) != 1 || deg["full_rank"].(float64) != float64(st.Rank) {
		t.Fatalf("degraded info = %v", deg)
	}
	if deg["error_bound"].(float64) <= 0 {
		t.Fatalf("degraded response missing error bound: %v", deg)
	}
}

// Boot must survive a snapshot directory whose CURRENT points at a
// missing generation: crash recovery serves the newest valid one and
// flags it.
func TestBootRecoversFromTornSnapshotDir(t *testing.T) {
	g := testGraph(t)
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for i := 0; i < 2; i++ {
		if _, _, err := eng.SaveSnapshot(dir); err != nil {
			t.Fatal(err)
		}
	}
	// A torn publish: CURRENT names a generation that never hit the disk.
	if err := os.WriteFile(filepath.Join(dir, core.CurrentFile), []byte(core.SnapshotName(9)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := &source{g: g, algo: csrplus.AlgoCSRPlus, rank: 3, snapDir: dir}
	cand, _, err := src.build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cand.Meta.Source != "snapshot" || !cand.Meta.Recovered || cand.Meta.SnapshotGen != 2 {
		t.Fatalf("recovery boot meta = %+v, want recovered snapshot gen 2", cand.Meta)
	}
	if cand.RankQuery == nil || cand.Rank != 3 {
		t.Fatalf("candidate missing rank structure: rank=%d", cand.Rank)
	}
}

// A sharded source boots by slicing a monolithic build, publishes
// per-shard snapshots, and then reloads by rolling those snapshots in
// shard by shard.
func TestShardedSourceBuildAndRoll(t *testing.T) {
	g := testGraph(t)
	dir := t.TempDir()
	src := &source{g: g, algo: csrplus.AlgoCSRPlus, rank: 3, snapDir: dir, shards: 3}
	cand, eng, err := src.build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if src.router == nil || src.router.K() != 3 || cand.Meta.Shards != 3 {
		t.Fatalf("boot meta = %+v, router = %v", cand.Meta, src.router)
	}
	for s, gen := range src.router.Generations() {
		if gen != 1 {
			t.Fatalf("shard %d at generation %d after boot, want 1", s, gen)
		}
	}
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("sharded boot without a core index")
	}
	if err := publishShardSnapshots(dir, ix, src.router.Plan()); err != nil {
		t.Fatal(err)
	}
	if !shardSnapshotsAvailable(dir, 3) {
		t.Fatal("published shard snapshots not detected")
	}
	cand2, eng2, err := src.build(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if eng2 != nil {
		t.Fatal("shard-snapshot reload should not build a monolithic engine")
	}
	if cand2.Meta.Source != "shard-snapshots" || cand2.Meta.Shards != 3 {
		t.Fatalf("reload meta = %+v", cand2.Meta)
	}
	for s, gen := range src.router.Generations() {
		if gen != 2 {
			t.Fatalf("shard %d at generation %d after roll, want 2", s, gen)
		}
	}
}

// The sharded mux serves bitwise-identical top-k to the monolithic one
// and surfaces per-shard detail on /stats and /admin/index without
// changing the unsharded response shapes.
func TestShardedMuxEndpoints(t *testing.T) {
	eng := testEngine(t)
	ix, ok := eng.CoreIndex()
	if !ok {
		t.Fatal("engine has no core index")
	}
	rt, err := shard.NewRouterFromIndex(ix, 3)
	if err != nil {
		t.Fatal(err)
	}
	sv := serve.NewRanked(serve.Ranked{
		N: rt.N(), Rank: rt.Rank(), Bound: rt.TruncationBound, Query: rt.QueryRankInto,
	}, serve.Config{Linger: -1})
	t.Cleanup(sv.Close)
	sv.Metrics().SetShards(rt.K())
	srv := httptest.NewServer(newMux(testManager(t, eng, sv), sv, nil, "", rt, nil))
	t.Cleanup(srv.Close)
	mono := testServer(t, serve.Config{}, nil)

	for _, path := range []string{"/topk?node=1&k=5", "/topk?nodes=1,3&k=4"} {
		codeA, bodyA := get(t, srv, path)
		codeB, bodyB := get(t, mono, path)
		if codeA != http.StatusOK || codeB != http.StatusOK {
			t.Fatalf("%s: sharded=%d mono=%d", path, codeA, codeB)
		}
		a, _ := json.Marshal(bodyA["matches"])
		b, _ := json.Marshal(bodyB["matches"])
		if string(a) != string(b) {
			t.Fatalf("%s: sharded %s != monolithic %s", path, a, b)
		}
	}

	code, body := get(t, srv, "/stats")
	if code != http.StatusOK {
		t.Fatalf("/stats code=%d", code)
	}
	shardList, ok := body["shards"].([]interface{})
	if !ok || len(shardList) != 3 {
		t.Fatalf("/stats shards = %v", body["shards"])
	}
	first := shardList[0].(map[string]interface{})
	if first["lo"].(float64) != 0 || first["generation"].(float64) != 1 {
		t.Fatalf("/stats shard 0 = %v", first)
	}
	serving := body["serving"].(map[string]interface{})
	if serving["shard_count"].(float64) != 3 {
		t.Fatalf("shard_count = %v", serving["shard_count"])
	}

	code, body = get(t, srv, "/admin/index")
	if code != http.StatusOK {
		t.Fatalf("/admin/index code=%d", code)
	}
	if _, ok := body["shards"].([]interface{}); !ok {
		t.Fatalf("/admin/index missing shards: %v", body)
	}
	if _, ok := body["generation"]; !ok {
		t.Fatalf("/admin/index lost generation key: %v", body)
	}
}

package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"csrplus"

	"csrplus/internal/cache"
)

func testEngine(t *testing.T) *csrplus.Engine {
	t.Helper()
	g, err := csrplus.NewGraph(6, [][2]int{
		{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
		{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func get(t *testing.T, srv *httptest.Server, path string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

func TestHealth(t *testing.T) {
	srv := httptest.NewServer(newMux(testEngine(t), nil))
	defer srv.Close()
	code, body := get(t, srv, "/health")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("code=%d body=%v", code, body)
	}
}

func TestStats(t *testing.T) {
	srv := httptest.NewServer(newMux(testEngine(t), nil))
	defer srv.Close()
	code, body := get(t, srv, "/stats")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	if body["algorithm"] != "CSR+" || body["n"].(float64) != 6 {
		t.Fatalf("body=%v", body)
	}
}

func TestTopKSingle(t *testing.T) {
	srv := httptest.NewServer(newMux(testEngine(t), nil))
	defer srv.Close()
	code, body := get(t, srv, "/topk?node=1&k=3")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	matches := body["matches"].([]interface{})
	if len(matches) != 3 {
		t.Fatalf("matches=%v", matches)
	}
	first := matches[0].(map[string]interface{})
	if int(first["node"].(float64)) != 3 {
		t.Fatalf("top match %v, want node 3", first)
	}
}

func TestTopKMulti(t *testing.T) {
	srv := httptest.NewServer(newMux(testEngine(t), nil))
	defer srv.Close()
	code, body := get(t, srv, "/topk?nodes=1,3&k=2")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	if len(body["matches"].([]interface{})) != 2 {
		t.Fatalf("body=%v", body)
	}
}

func TestSimilarityPairs(t *testing.T) {
	srv := httptest.NewServer(newMux(testEngine(t), nil))
	defer srv.Close()
	code, body := get(t, srv, "/similarity?node=1&targets=3,4")
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%v", code, body)
	}
	pairs := body["pairs"].([]interface{})
	if len(pairs) != 2 {
		t.Fatalf("pairs=%v", pairs)
	}
	p0 := pairs[0].(map[string]interface{})
	if p0["score"].(float64) <= 0 {
		t.Fatalf("pair score %v", p0)
	}
}

func TestBadRequests(t *testing.T) {
	srv := httptest.NewServer(newMux(testEngine(t), nil))
	defer srv.Close()
	for _, path := range []string{
		"/topk",                         // missing node
		"/topk?node=zzz",                // unparsable id
		"/topk?node=99",                 // out of range
		"/topk?node=1&k=0",              // bad k
		"/similarity?node=1",            // missing targets
		"/similarity?node=1&targets=99", // target out of range
	} {
		code, body := get(t, srv, path)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: code=%d body=%v", path, code, body)
		}
		if body["error"] == "" {
			t.Fatalf("%s: no error message", path)
		}
	}
}

func TestLoadGraphValidation(t *testing.T) {
	if _, err := loadGraph("", 0, "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadGraph("FB", 0, "x.txt", 5); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadGraph("", 0, "x.txt", 0); err == nil {
		t.Fatal("-graph without -n accepted")
	}
}

func TestTopKCachePath(t *testing.T) {
	lru := cache.New(8)
	srv := httptest.NewServer(newMux(testEngine(t), lru))
	defer srv.Close()
	code, first := get(t, srv, "/topk?node=1&k=2")
	if code != http.StatusOK {
		t.Fatalf("code=%d", code)
	}
	if first["cached"] != nil {
		t.Fatal("first request marked cached")
	}
	code, second := get(t, srv, "/topk?node=1&k=2")
	if code != http.StatusOK || second["cached"] != true {
		t.Fatalf("second request not cached: %v", second)
	}
	// Same node, different k must miss.
	_, third := get(t, srv, "/topk?node=1&k=3")
	if third["cached"] == true {
		t.Fatal("different k hit the cache")
	}
	// Stats expose counters.
	_, stats := get(t, srv, "/stats")
	if stats["cache_hits"].(float64) < 1 {
		t.Fatalf("stats = %v", stats)
	}
}

// BenchmarkTopKHandler measures end-to-end request throughput of the
// /topk route, cached and uncached.
func BenchmarkTopKHandler(b *testing.B) {
	g, err := csrplus.NewGraph(6, [][2]int{
		{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
		{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
	})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 3})
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, lru *cache.LRU) {
		srv := httptest.NewServer(newMux(eng, lru))
		defer srv.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := http.Get(srv.URL + "/topk?node=1&k=3")
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			resp.Body.Close()
		}
	}
	b.Run("uncached", func(b *testing.B) { run(b, nil) })
	b.Run("cached", func(b *testing.B) { run(b, cache.New(64)) })
}

package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	// The paper's 6-node example graph.
	edges := "3 0\n0 1\n2 1\n4 1\n3 2\n0 3\n4 3\n5 3\n2 4\n5 4\n3 5\n"
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := os.WriteFile(path, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseQueries(t *testing.T) {
	qs, err := parseQueries("1, 2,3")
	if err != nil || len(qs) != 3 || qs[0] != 1 || qs[2] != 3 {
		t.Fatalf("qs=%v err=%v", qs, err)
	}
	if _, err := parseQueries(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := parseQueries("1,x"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestLoadGraphValidation(t *testing.T) {
	if _, err := loadGraph("", 0, "", 0); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadGraph("FB", 0, "x", 3); err == nil {
		t.Fatal("both sources accepted")
	}
	if _, err := loadGraph("", 0, "x.txt", 0); err == nil {
		t.Fatal("graph without -n accepted")
	}
}

func TestRunTableOutput(t *testing.T) {
	path := writeTestGraph(t)
	var buf bytes.Buffer
	if err := run(&buf, "", 0, path, 6, "CSR+", 3, 0.6, "1", 3, false, "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "n=6 m=11") {
		t.Fatalf("missing graph line:\n%s", out)
	}
	if !strings.Contains(out, "node 3") {
		t.Fatalf("top match (node 3, paper example) missing:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeTestGraph(t)
	var buf bytes.Buffer
	if err := run(&buf, "", 0, path, 6, "CSR+", 3, 0.6, "1,3", 2, true, "", ""); err != nil {
		t.Fatal(err)
	}
	var body struct {
		Algorithm string `json:"algorithm"`
		N         int    `json:"n"`
		Queries   []int  `json:"queries"`
		Matches   []struct {
			Node  int     `json:"node"`
			Score float64 `json:"score"`
		} `json:"matches"`
	}
	if err := json.Unmarshal(buf.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	if body.Algorithm != "CSR+" || body.N != 6 || len(body.Matches) != 2 {
		t.Fatalf("body = %+v", body)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeTestGraph(t)
	var buf bytes.Buffer
	if err := run(&buf, "", 0, path, 6, "bogus", 3, 0.6, "1", 3, false, "", ""); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
	if err := run(&buf, "", 0, path, 6, "CSR+", 3, 0.6, "99", 3, false, "", ""); err == nil {
		t.Fatal("out-of-range query accepted")
	}
	if err := run(&buf, "", 0, path, 6, "CSR+", 3, 0.6, "", 3, false, "", ""); err == nil {
		t.Fatal("missing queries accepted")
	}
}

func TestRunDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "P2P", 64, "", 0, "CSR+", 3, 0.6, "0,1", 2, false, "", ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "top-2") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestRunIndexRoundTrip(t *testing.T) {
	path := writeTestGraph(t)
	ixPath := filepath.Join(t.TempDir(), "g.csrx")
	var buf bytes.Buffer
	// Build and persist.
	if err := run(&buf, "", 0, path, 6, "CSR+", 3, 0.6, "1", 3, false, "", ixPath); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	// Serve from the persisted index.
	buf.Reset()
	if err := run(&buf, "", 0, path, 6, "CSR+", 3, 0.6, "1", 3, false, ixPath, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "node 3") {
		t.Fatalf("index-served output wrong:\n%s", buf.String())
	}
	_ = first
}

// Command csrquery answers CoSimRank similarity queries from the terminal.
//
// Usage:
//
//	csrquery -dataset FB -q 12,99 -k 10            # top-10 per aggregate
//	csrquery -graph edges.txt -n 5000 -q 7 -k 5    # from an edge-list file
//	csrquery -dataset P2P -algo CSR-IT -q 3 -json  # pick the algorithm
//
// With one query node the output is that node's top-k most similar nodes;
// with several, the top-k by aggregate similarity to the whole set (the
// paper's Wikipedians-categorisation pattern).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"csrplus"
)

func main() {
	dataset := flag.String("dataset", "", "generate a paper dataset stand-in: FB, P2P, YT, WT, TW, WB")
	scale := flag.Int64("dscale", 0, "dataset downscale factor (0 = dataset default)")
	graphPath := flag.String("graph", "", "edge-list file (src dst per line)")
	n := flag.Int("n", 0, "node count for -graph")
	algo := flag.String("algo", csrplus.AlgoCSRPlus, "algorithm: "+strings.Join(csrplus.Algorithms(), ", "))
	rank := flag.Int("r", 5, "SVD rank / iteration count")
	damping := flag.Float64("c", 0.6, "damping factor in (0, 1)")
	queryList := flag.String("q", "", "comma-separated query node ids (required)")
	k := flag.Int("k", 10, "result count")
	asJSON := flag.Bool("json", false, "emit JSON instead of a table")
	indexPath := flag.String("index", "", "load a persisted CSR+ index instead of precomputing")
	saveIndex := flag.String("saveindex", "", "persist the precomputed CSR+ index to this path")
	flag.Parse()

	if err := run(os.Stdout, *dataset, *scale, *graphPath, *n, *algo, *rank, *damping, *queryList, *k, *asJSON, *indexPath, *saveIndex); err != nil {
		fmt.Fprintln(os.Stderr, "csrquery:", err)
		os.Exit(1)
	}
}

func run(out io.Writer, dataset string, scale int64, graphPath string, n int, algo string, rank int, damping float64, queryList string, k int, asJSON bool, indexPath, saveIndex string) error {
	queries, err := parseQueries(queryList)
	if err != nil {
		return err
	}
	g, err := loadGraph(dataset, scale, graphPath, n)
	if err != nil {
		return err
	}
	var eng *csrplus.Engine
	if indexPath != "" {
		eng, err = csrplus.LoadEngine(g, indexPath)
	} else {
		eng, err = csrplus.NewEngine(g, csrplus.Options{
			Algorithm: algo,
			Rank:      rank,
			Damping:   damping,
		})
	}
	if err != nil {
		return err
	}
	if saveIndex != "" {
		if err := eng.SaveIndex(saveIndex); err != nil {
			return err
		}
	}
	var matches []csrplus.Match
	if len(queries) == 1 {
		matches, err = eng.TopK(queries[0], k)
	} else {
		matches, err = eng.TopKMulti(queries, k)
	}
	if err != nil {
		return err
	}
	st := eng.Stats()
	if asJSON {
		return json.NewEncoder(out).Encode(struct {
			Algorithm string          `json:"algorithm"`
			N         int             `json:"n"`
			M         int64           `json:"m"`
			Queries   []int           `json:"queries"`
			Matches   []csrplus.Match `json:"matches"`
		}{st.Algorithm, st.N, st.M, queries, matches})
	}
	fmt.Fprintf(out, "graph: n=%d m=%d | algorithm: %s | precompute: %v\n",
		st.N, st.M, st.Algorithm, st.PrecomputeTime.Round(1000))
	fmt.Fprintf(out, "top-%d nodes similar to %v:\n", k, queries)
	for i, m := range matches {
		fmt.Fprintf(out, "%3d. node %-8d score %.6f\n", i+1, m.Node, m.Score)
	}
	return nil
}

func parseQueries(list string) ([]int, error) {
	if list == "" {
		return nil, fmt.Errorf("-q is required (comma-separated node ids)")
	}
	parts := strings.Split(list, ",")
	queries := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad query id %q: %w", p, err)
		}
		queries = append(queries, id)
	}
	return queries, nil
}

func loadGraph(dataset string, scale int64, graphPath string, n int) (*csrplus.Graph, error) {
	switch {
	case dataset != "" && graphPath != "":
		return nil, fmt.Errorf("use either -dataset or -graph, not both")
	case dataset != "":
		return csrplus.GenerateDataset(dataset, scale)
	case graphPath != "":
		if n <= 0 {
			return nil, fmt.Errorf("-graph requires -n (node count)")
		}
		return csrplus.LoadGraph(graphPath, n)
	default:
		return nil, fmt.Errorf("one of -dataset or -graph is required")
	}
}

package csrplus_test

import (
	"fmt"
	"log"

	"csrplus"
)

// The 6-node Wikipedia-Talk graph of the paper's Figure 1.
var exampleEdges = [][2]int{
	{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
	{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
}

func ExampleNewEngine() {
	g, err := csrplus.NewGraph(6, exampleEdges)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Damping: 0.6, Rank: 3})
	if err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("%s index over n=%d m=%d\n", st.Algorithm, st.N, st.M)
	// Output:
	// CSR+ index over n=6 m=11
}

func ExampleEngine_Query() {
	g, err := csrplus.NewGraph(6, exampleEdges)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Damping: 0.6, Rank: 3})
	if err != nil {
		log.Fatal(err)
	}
	// Multi-source query Q = {b, d} — the paper's Example 3.6.
	cols, err := eng.Query([]int{1, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("S[b,b] = %.2f, S[d,b] = %.2f, S[d,d] = %.2f\n",
		cols[0][1], cols[0][3], cols[1][3])
	// Output:
	// S[b,b] = 1.49, S[d,b] = 0.49, S[d,d] = 1.49
}

func ExampleEngine_TopK() {
	g, err := csrplus.NewGraph(6, exampleEdges)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Damping: 0.6, Rank: 3})
	if err != nil {
		log.Fatal(err)
	}
	top, err := eng.TopK(1, 2) // most similar to node b
	if err != nil {
		log.Fatal(err)
	}
	names := []string{"a", "b", "c", "d", "e", "f"}
	for _, m := range top {
		fmt.Printf("%s %.2f\n", names[m.Node], m.Score)
	}
	// Output:
	// d 0.49
	// e 0.48
}

func ExampleGenerateDataset() {
	// The P2P (Gnutella) stand-in at 1:64 scale.
	g, err := csrplus.GenerateDataset("P2P", 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("n=%d\n", g.N())
	// Output:
	// n=354
}

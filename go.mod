module csrplus

go 1.22

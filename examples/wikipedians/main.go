// Wikipedians categorisation — the paper's §1 motivating application.
//
// A synthetic Wikipedia-Talk graph is built with three interest
// communities (art, law, science). A handful of users per community carry
// a known label ("added their user page to the Wikipedian-by-interest
// category"); everyone else is unlabelled. For each label we issue one
// multi-source CoSimRank query over its labelled seeds and assign each
// unlabelled user to the label with the highest aggregate similarity —
// then score the assignment against the hidden ground truth.
//
//	go run ./examples/wikipedians
package main

import (
	"fmt"
	"log"
	"math/rand"

	"csrplus"
)

const (
	communities   = 3
	usersPerComm  = 120
	seedsPerComm  = 5
	intraEdges    = 8 // talk-page edits towards own community, per user
	interEdges    = 2 // edits towards other communities, per user
	generatorSeed = 7
)

var labels = []string{"art", "law", "science"}

func main() {
	n := communities * usersPerComm
	g, truth, err := buildTalkGraph(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic Wikipedia-Talk graph: %d users, %d edit edges, %d communities\n",
		g.N(), g.M(), communities)

	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 16})
	if err != nil {
		log.Fatal(err)
	}

	// One multi-source query per label, over that label's seed users.
	scores := make([][]float64, communities)
	for c := 0; c < communities; c++ {
		seeds := make([]int, seedsPerComm)
		for s := range seeds {
			seeds[s] = c*usersPerComm + s // the first users of each block
		}
		cols, err := eng.Query(seeds)
		if err != nil {
			log.Fatal(err)
		}
		agg := make([]float64, n)
		for _, col := range cols {
			for i, v := range col {
				agg[i] += v
			}
		}
		scores[c] = agg
	}

	// Assign every unlabelled user to the best label; measure accuracy.
	correct, total := 0, 0
	confusion := make([][]int, communities)
	for c := range confusion {
		confusion[c] = make([]int, communities)
	}
	for u := 0; u < n; u++ {
		if u%usersPerComm < seedsPerComm {
			continue // labelled seed, not scored
		}
		best, bestScore := 0, scores[0][u]
		for c := 1; c < communities; c++ {
			if scores[c][u] > bestScore {
				best, bestScore = c, scores[c][u]
			}
		}
		confusion[truth[u]][best]++
		if best == truth[u] {
			correct++
		}
		total++
	}
	fmt.Printf("\ncategorisation accuracy: %d/%d = %.1f%% (chance = %.1f%%)\n",
		correct, total, 100*float64(correct)/float64(total), 100.0/communities)
	fmt.Println("\nconfusion matrix (rows = truth, cols = predicted):")
	fmt.Printf("%10s", "")
	for _, l := range labels {
		fmt.Printf("%10s", l)
	}
	fmt.Println()
	for c, row := range confusion {
		fmt.Printf("%10s", labels[c])
		for _, v := range row {
			fmt.Printf("%10d", v)
		}
		fmt.Println()
	}
}

// buildTalkGraph wires a planted-partition talk graph: users mostly edit
// talk pages inside their own community. Returns the graph and the hidden
// community of every user.
func buildTalkGraph(n int) (*csrplus.Graph, []int, error) {
	rng := rand.New(rand.NewSource(generatorSeed))
	truth := make([]int, n)
	var edges [][2]int
	for u := 0; u < n; u++ {
		c := u / usersPerComm
		truth[u] = c
		for e := 0; e < intraEdges; e++ {
			v := c*usersPerComm + rng.Intn(usersPerComm)
			if v != u {
				edges = append(edges, [2]int{u, v})
			}
		}
		for e := 0; e < interEdges; e++ {
			v := rng.Intn(n)
			if v/usersPerComm != c {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	g, err := csrplus.NewGraph(n, edges)
	return g, truth, err
}

// Synonym expansion — the application CoSimRank was conceived for
// (Rothe & Schütze 2014) and the paper's first cited use case [10].
//
// A small word graph is built from dependency-style co-occurrence: an
// edge w1 -> w2 means "w1 modifies / co-occurs with w2". CoSimRank's
// recursion ("words are similar when the words pointing at them are
// similar") then surfaces synonym candidates that share contexts without
// ever co-occurring themselves.
//
//	go run ./examples/synonyms
package main

import (
	"fmt"
	"log"

	"csrplus"
)

// vocabulary and context graph: content words link to the context words
// they appear with. Synonym pairs (car/automobile, quick/fast, big/large)
// share contexts but never link to each other.
var vocab = []string{
	"car", "automobile", "truck", // 0-2: vehicles
	"quick", "fast", "slow", // 3-5: speed adjectives
	"big", "large", "small", // 6-8: size adjectives
	"engine", "road", "wheel", // 9-11: vehicle contexts
	"runner", "delivery", // 12-13: speed contexts
	"house", "city", // 14-15: size contexts
}

// cooccur maps each content word to its context words with corpus
// counts — the weighted edges make frequent contexts dominate the
// transition distribution (csrplus.NewWeightedGraph).
var cooccur = map[string]map[string]float64{
	"car":        {"engine": 12, "road": 20, "wheel": 8},
	"automobile": {"engine": 6, "road": 9, "wheel": 4},
	"truck":      {"engine": 7, "road": 11, "delivery": 9},
	"quick":      {"runner": 10, "delivery": 6},
	"fast":       {"runner": 14, "delivery": 7, "car": 3},
	"slow":       {"runner": 5, "road": 4},
	"big":        {"house": 15, "city": 9, "truck": 2},
	"large":      {"house": 11, "city": 7},
	"small":      {"house": 8, "wheel": 2},
}

func main() {
	index := make(map[string]int, len(vocab))
	for i, w := range vocab {
		index[w] = i
	}
	var edges []csrplus.WeightedEdge
	for w, ctxs := range cooccur {
		for ctx, count := range ctxs {
			// Both directions: sharing a context should count regardless
			// of the dependency's direction.
			edges = append(edges,
				csrplus.WeightedEdge{From: index[w], To: index[ctx], Weight: count},
				csrplus.WeightedEdge{From: index[ctx], To: index[w], Weight: count})
		}
	}
	g, err := csrplus.NewWeightedGraph(len(vocab), edges)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 8, Damping: 0.8})
	if err != nil {
		log.Fatal(err)
	}

	for _, probe := range []string{"car", "quick", "big"} {
		top, err := eng.TopK(index[probe], 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("synonym candidates for %q:\n", probe)
		for i, m := range top {
			fmt.Printf("  %d. %-12s %.4f\n", i+1, vocab[m.Node], m.Score)
		}
	}

	// The headline check: "automobile" must top "car"'s list even though
	// the two words never co-occur.
	top, err := eng.TopK(index["car"], 1)
	if err != nil {
		log.Fatal(err)
	}
	if vocab[top[0].Node] == "automobile" {
		fmt.Println("\n✓ car/automobile found without direct co-occurrence")
	} else {
		fmt.Printf("\n✗ expected automobile, got %s\n", vocab[top[0].Node])
	}
}

// Quickstart: build a graph, precompute a CSR+ index, and answer
// CoSimRank queries — the paper's Example 3.6 end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"csrplus"
)

func main() {
	// The 6-node Wikipedia-Talk graph of the paper's Figure 1:
	// nodes a..f = 0..5, an edge u -> v means "u edited v's talk page".
	g, err := csrplus.NewGraph(6, [][2]int{
		{3, 0},                 // d -> a
		{0, 1}, {2, 1}, {4, 1}, // a, c, e -> b
		{3, 2},                 // d -> c
		{0, 3}, {4, 3}, {5, 3}, // a, e, f -> d
		{2, 4}, {5, 4}, // c, f -> e
		{3, 5}, // d -> f
	})
	if err != nil {
		log.Fatal(err)
	}

	// Precompute the CSR+ index with the paper's Example 3.6 parameters:
	// damping c = 0.6, rank r = 3.
	eng, err := csrplus.NewEngine(g, csrplus.Options{Damping: 0.6, Rank: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Multi-source query Q = {b, d} — both users are labelled "law".
	names := []string{"a", "b", "c", "d", "e", "f"}
	cols, err := eng.Query([]int{1, 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("CoSimRank similarities [S]_{*,Q} for Q = {b, d}:")
	fmt.Printf("%4s %10s %10s\n", "node", "S[*, b]", "S[*, d]")
	for i := range names {
		fmt.Printf("%4s %10.4f %10.4f\n", names[i], cols[0][i], cols[1][i])
	}

	// Top-k retrieval: which users are most similar to b?
	top, err := eng.TopK(1, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost similar to b:")
	for i, m := range top {
		fmt.Printf("%d. %s (%.4f)\n", i+1, names[m.Node], m.Score)
	}

	st := eng.Stats()
	fmt.Printf("\nprecompute: %v, analytic peak memory: %d bytes\n",
		st.PrecomputeTime, st.PeakBytes)
}

// Link prediction — one of the paper's §1 application domains [7].
//
// A Barabási–Albert social graph is generated, 10% of its undirected
// edges are hidden, and CoSimRank similarity on the remaining graph ranks
// candidate partners for a set of probe nodes. Precision@k against the
// hidden edges is compared with a random-candidate baseline and with a
// common-neighbour count — CoSimRank should comfortably beat random and
// be competitive with common-neighbours while also scoring non-adjacent
// pairs.
//
//	go run ./examples/linkprediction
package main

import (
	"fmt"
	"log"
	"math/rand"

	"csrplus"
)

const (
	nodes     = 600
	attach    = 6
	hideFrac  = 0.10
	probes    = 40
	topKEval  = 10
	splitSeed = 11
)

func main() {
	g, hidden, err := buildSplitGraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training graph: n=%d m=%d, hidden undirected edges: %d\n",
		g.N(), g.M(), len(hidden))

	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 24})
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(splitSeed + 1))
	probeSet := pickProbes(hidden, probes)
	hitCoSim, hitRandom, evaluated := 0, 0, 0
	for _, u := range probeSet {
		truth := hidden[u]
		if len(truth) == 0 {
			continue
		}
		evaluated++
		// CoSimRank candidates: top-k similar nodes not already linked.
		col, err := eng.QueryOne(u)
		if err != nil {
			log.Fatal(err)
		}
		type cand struct {
			node  int
			score float64
		}
		var cands []cand
		for v, s := range col {
			if v != u && !g.HasEdge(u, v) {
				cands = append(cands, cand{v, s})
			}
		}
		// Partial selection of the top-k.
		for i := 0; i < topKEval && i < len(cands); i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].score > cands[best].score {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
			if truth[cands[i].node] {
				hitCoSim++
				break
			}
		}
		// Random baseline: k random non-neighbours.
		for t := 0; t < topKEval; t++ {
			v := rng.Intn(g.N())
			if v != u && !g.HasEdge(u, v) && truth[v] {
				hitRandom++
				break
			}
		}
	}
	fmt.Printf("\nhit@%d over %d probes:\n", topKEval, evaluated)
	fmt.Printf("  CoSimRank (CSR+): %d/%d = %.1f%%\n", hitCoSim, evaluated, pct(hitCoSim, evaluated))
	fmt.Printf("  random baseline:  %d/%d = %.1f%%\n", hitRandom, evaluated, pct(hitRandom, evaluated))
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// buildSplitGraph generates a BA graph, hides hideFrac of its undirected
// edges, and returns the training graph plus hidden-neighbour sets.
func buildSplitGraph() (*csrplus.Graph, map[int]map[int]bool, error) {
	rng := rand.New(rand.NewSource(splitSeed))
	type pair struct{ u, v int }
	seen := map[pair]bool{}
	var undirected []pair
	// Simple preferential attachment.
	targets := []int{}
	for u := 0; u <= attach; u++ {
		for v := 0; v < u; v++ {
			undirected = append(undirected, pair{v, u})
			seen[pair{v, u}] = true
		}
		for t := 0; t < attach; t++ {
			targets = append(targets, u)
		}
	}
	for u := attach + 1; u < nodes; u++ {
		added := map[int]bool{}
		for len(added) < attach {
			v := targets[rng.Intn(len(targets))]
			if v == u || added[v] {
				continue
			}
			added[v] = true
			p := pair{v, u}
			if !seen[p] {
				seen[p] = true
				undirected = append(undirected, p)
			}
			targets = append(targets, u, v)
		}
	}
	// Hide a fraction.
	hidden := make(map[int]map[int]bool)
	addHidden := func(u, v int) {
		if hidden[u] == nil {
			hidden[u] = map[int]bool{}
		}
		hidden[u][v] = true
	}
	var train [][2]int
	for _, p := range undirected {
		if rng.Float64() < hideFrac {
			addHidden(p.u, p.v)
			addHidden(p.v, p.u)
			continue
		}
		train = append(train, [2]int{p.u, p.v}, [2]int{p.v, p.u})
	}
	g, err := csrplus.NewGraph(nodes, train)
	return g, hidden, err
}

// pickProbes returns up to k nodes that have hidden edges.
func pickProbes(hidden map[int]map[int]bool, k int) []int {
	var out []int
	for u := 0; len(out) < k && u < 1<<20; u++ {
		if len(hidden[u]) > 0 {
			out = append(out, u)
		}
	}
	return out
}

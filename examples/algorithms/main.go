// Algorithm comparison — every CoSimRank method in this repository run on
// the same graph and queries, with timings and agreement against the
// exact reference. A miniature of the paper's Figure 2 driven purely
// through the public API.
//
//	go run ./examples/algorithms
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"csrplus"
)

func main() {
	g, err := csrplus.GenerateDataset("P2P", 32) // ~700-node Gnutella
	if err != nil {
		log.Fatal(err)
	}
	queries := []int{3, 57, 250, 500, 700}
	fmt.Printf("graph: n=%d m=%d, |Q|=%d\n\n", g.N(), g.M(), len(queries))

	// Exact reference first.
	exact, err := csrplus.NewEngine(g, csrplus.Options{Algorithm: csrplus.AlgoExact, Eps: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	want, err := exact.Query(queries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %12s %14s %12s\n",
		"algorithm", "precompute", "query", "avg |err|", "peak bytes")
	for _, algo := range csrplus.Algorithms() {
		start := time.Now()
		eng, err := csrplus.NewEngine(g, csrplus.Options{Algorithm: algo, Rank: 5})
		if err != nil {
			log.Fatal(err)
		}
		precompute := time.Since(start)
		start = time.Now()
		got, err := eng.Query(queries)
		if err != nil {
			log.Fatal(err)
		}
		query := time.Since(start)
		fmt.Printf("%-10s %12v %12v %14.3e %12d\n",
			algo, precompute.Round(time.Microsecond), query.Round(time.Microsecond),
			avgAbsErr(got, want), eng.Stats().PeakBytes)
	}
	fmt.Println("\nnote: the iterative methods run K = r = 5 series terms (the")
	fmt.Println("paper's fairness rule), so their residual error is the series")
	fmt.Println("tail; CSR+/CSR-NI's is the rank-5 truncation; Exact's is ~0.")
}

func avgAbsErr(got, want [][]float64) float64 {
	sum, count := 0.0, 0
	for j := range want {
		for i := range want[j] {
			sum += math.Abs(got[j][i] - want[j][i])
			count++
		}
	}
	return sum / float64(count)
}

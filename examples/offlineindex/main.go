// Offline/online split — deploying CSR+ the way its two-phase design
// intends: phase I (SVD + subspace solve) runs once, offline; the
// resulting index is persisted; query serving loads it in milliseconds
// and never touches the expensive path again.
//
//	go run ./examples/offlineindex
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"csrplus"
)

func main() {
	dir, err := os.MkdirTemp("", "csrplus-offline")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	indexPath := filepath.Join(dir, "wt.csrx")

	// --- Offline: build the graph, precompute, persist. ---
	g, err := csrplus.GenerateDataset("WT", 200) // ~12k-node talk graph
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	eng, err := csrplus.NewEngine(g, csrplus.Options{Rank: 8})
	if err != nil {
		log.Fatal(err)
	}
	precompute := time.Since(start)
	if err := eng.SaveIndex(indexPath); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(indexPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline: graph n=%d m=%d, precompute %v, index file %d KiB\n",
		g.N(), g.M(), precompute.Round(time.Millisecond), info.Size()/1024)

	// --- Online: load and serve. ---
	start = time.Now()
	server, err := csrplus.LoadEngine(g, indexPath)
	if err != nil {
		log.Fatal(err)
	}
	load := time.Since(start)

	queries := []int{10, 200, 3000}
	start = time.Now()
	cols, err := server.Query(queries)
	if err != nil {
		log.Fatal(err)
	}
	query := time.Since(start)
	fmt.Printf("online:  index load %v, |Q|=%d multi-source query %v\n",
		load.Round(time.Microsecond), len(queries), query.Round(time.Microsecond))

	// Answers from the loaded index must match the freshly built engine.
	fresh, err := eng.Query(queries)
	if err != nil {
		log.Fatal(err)
	}
	maxDiff := 0.0
	for j := range queries {
		for i := range cols[j] {
			if d := cols[j][i] - fresh[j][i]; d > maxDiff || -d > maxDiff {
				if d < 0 {
					d = -d
				}
				maxDiff = d
			}
		}
	}
	fmt.Printf("verify:  max |loaded - fresh| = %g\n", maxDiff)
	top, err := server.TopK(queries[0], 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sample:  top-5 similar to node %d: ", queries[0])
	for _, m := range top {
		fmt.Printf("%d(%.3f) ", m.Node, m.Score)
	}
	fmt.Println()
}

package csrplus

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// paperEdges is the 6-node graph of the paper's Figure 1 (a..f = 0..5).
var paperEdges = [][2]int{
	{3, 0}, {0, 1}, {2, 1}, {4, 1}, {3, 2},
	{0, 3}, {4, 3}, {5, 3}, {2, 4}, {5, 4}, {3, 5},
}

func paperGraph(t testing.TB) *Graph {
	t.Helper()
	g, err := NewGraph(6, paperEdges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGraph(t *testing.T) {
	g := paperGraph(t)
	if g.N() != 6 || g.M() != 11 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	if !g.HasEdge(3, 0) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestNewGraphBadEdge(t *testing.T) {
	if _, err := NewGraph(3, [][2]int{{0, 5}}); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("err = %v, want ErrBadEdge", err)
	}
}

func TestReadAndSaveGraph(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("0 1\n1 2\n"), 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.txt")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGraph(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != 2 {
		t.Fatalf("M = %d", back.M())
	}
}

func TestGenerateDataset(t *testing.T) {
	g, err := GenerateDataset("P2P", 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 22687/8 {
		t.Fatalf("N = %d", g.N())
	}
	if _, err := GenerateDataset("NOPE", 0); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestDatasetKeys(t *testing.T) {
	keys := DatasetKeys()
	want := []string{"FB", "P2P", "YT", "WT", "TW", "WB"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestEngineDefaultsToCSRPlus(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Algorithm != AlgoCSRPlus || st.N != 6 || st.M != 11 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PrecomputeTime <= 0 || st.PeakBytes <= 0 {
		t.Fatalf("counters not recorded: %+v", st)
	}
}

func TestEngineQueryMatchesPaperExample(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	cols, err := eng.Query([]int{1, 3}) // b, d
	if err != nil {
		t.Fatal(err)
	}
	wantB := []float64{0.16, 1.49, 0.16, 0.49, 0.48, 0.16}
	wantD := []float64{0.16, 0.49, 0.16, 1.49, 0.48, 0.16}
	for i := 0; i < 6; i++ {
		if math.Abs(cols[0][i]-wantB[i]) > 0.02 || math.Abs(cols[1][i]-wantD[i]) > 0.02 {
			t.Fatalf("cols = %v / %v", cols[0], cols[1])
		}
	}
}

func TestEngineAllAlgorithms(t *testing.T) {
	g := paperGraph(t)
	for _, algo := range Algorithms() {
		eng, err := NewEngine(g, Options{Algorithm: algo, Rank: 3})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		col, err := eng.QueryOne(3)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(col) != 6 {
			t.Fatalf("%s: len = %d", algo, len(col))
		}
		// Self-similarity must be the column's max for every method.
		for i, v := range col {
			if i != 3 && v > col[3] {
				t.Fatalf("%s: S[%d]=%v exceeds self-similarity %v", algo, i, v, col[3])
			}
		}
	}
}

func TestEngineUnknownAlgorithm(t *testing.T) {
	if _, err := NewEngine(paperGraph(t), Options{Algorithm: "bogus"}); err == nil {
		t.Fatal("bogus algorithm accepted")
	}
}

func TestEngineNilGraph(t *testing.T) {
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestTopK(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	top, err := eng.TopK(1, 3) // most similar to b
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 3 {
		t.Fatalf("got %d matches", len(top))
	}
	for _, m := range top {
		if m.Node == 1 {
			t.Fatal("query node in its own results")
		}
	}
	// b and d share in-neighbour structure; d must rank first.
	if top[0].Node != 3 {
		t.Fatalf("top match for b = %+v, want node 3 (d)", top[0])
	}
	if top[0].Score < top[1].Score {
		t.Fatal("results not sorted")
	}
}

func TestTopKMulti(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Algorithm: AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	top, err := eng.TopKMulti([]int{1, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("got %d", len(top))
	}
	for _, m := range top {
		if m.Node == 1 || m.Node == 3 {
			t.Fatal("query nodes not excluded")
		}
	}
}

func TestQueryErrors(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query([]int{17}); err == nil {
		t.Fatal("out-of-range query accepted")
	}
	if _, err := eng.Query(nil); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestConcurrentQueries(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.QueryOne(2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			col, err := eng.QueryOne(2)
			if err != nil {
				errs <- err
				return
			}
			for i := range col {
				if col[i] != ref[i] {
					errs <- errors.New("concurrent query mismatch")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCrossAlgorithmConsistency(t *testing.T) {
	// CSR+ at full rank, IT/RLS at high iteration count and Exact must
	// agree on a mid-size random graph's query block.
	g, err := GenerateDataset("P2P", 64) // n ≈ 354
	if err != nil {
		t.Fatal(err)
	}
	queries := []int{0, 10, 100, 200}
	exact, err := NewEngine(g, Options{Algorithm: AlgoExact, Eps: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Query(queries)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewEngine(g, Options{Algorithm: AlgoIT, Rank: 40})
	if err != nil {
		t.Fatal(err)
	}
	got, err := it.Query(queries)
	if err != nil {
		t.Fatal(err)
	}
	for j := range queries {
		for i := range got[j] {
			if math.Abs(got[j][i]-want[j][i]) > 1e-6 {
				t.Fatalf("IT vs Exact at (%d, %d): %v vs %v", i, j, got[j][i], want[j][i])
			}
		}
	}
}

func TestSaveLoadEngineIndex(t *testing.T) {
	g := paperGraph(t)
	eng, err := NewEngine(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.csrx")
	if err := eng.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEngine(g, path)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.QueryOne(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.QueryOne(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("loaded engine answers differently")
		}
	}
	if back.Stats().Algorithm != AlgoCSRPlus {
		t.Fatal("loaded engine algorithm wrong")
	}
}

func TestSaveSnapshotLifecycle(t *testing.T) {
	g := paperGraph(t)
	eng, err := NewEngine(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Stats().Rank != 3 {
		t.Fatalf("Stats().Rank = %d, want 3", eng.Stats().Rank)
	}
	dir := filepath.Join(t.TempDir(), "snaps")
	gen1, path1, err := eng.SaveSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if gen1 != 1 {
		t.Fatalf("first snapshot generation %d", gen1)
	}
	gen2, _, err := eng.SaveSnapshot(dir)
	if err != nil || gen2 != 2 {
		t.Fatalf("second snapshot: gen=%d err=%v", gen2, err)
	}
	// Old generations stay loadable (rollback), and a loaded engine
	// answers identically to the one that published it.
	back, err := LoadEngine(g, path1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.QueryOne(1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.QueryOne(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("snapshot engine answers differently")
		}
	}
	if back.Stats().Rank != 3 {
		t.Fatalf("loaded Stats().Rank = %d, want 3", back.Stats().Rank)
	}
	// Baselines have no persistable index to snapshot.
	it, err := NewEngine(g, Options{Algorithm: AlgoIT, Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := it.SaveSnapshot(dir); !errors.Is(err, ErrNotCSRPlus) {
		t.Fatalf("err = %v, want ErrNotCSRPlus", err)
	}
}

func TestSaveIndexRejectsBaselines(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Algorithm: AlgoIT, Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SaveIndex(filepath.Join(t.TempDir(), "x")); !errors.Is(err, ErrNotCSRPlus) {
		t.Fatalf("err = %v, want ErrNotCSRPlus", err)
	}
}

func TestLoadEngineNodeCountMismatch(t *testing.T) {
	g := paperGraph(t)
	eng, err := NewEngine(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ix.csrx")
	if err := eng.SaveIndex(path); err != nil {
		t.Fatal(err)
	}
	other, err := NewGraph(3, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadEngine(other, path); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
	if _, err := LoadEngine(nil, path); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestQueryBatchMatchesQuery(t *testing.T) {
	g, err := GenerateDataset("P2P", 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{AlgoCSRPlus, AlgoRLS, AlgoExact} {
		eng, err := NewEngine(g, Options{Algorithm: algo, Rank: 4})
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]int, 30)
		for i := range queries {
			queries[i] = i * 7 % g.N()
		}
		want, err := eng.Query(queries)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.QueryBatch(queries, 4)
		if err != nil {
			t.Fatal(err)
		}
		for j := range queries {
			for i := range want[j] {
				if got[j][i] != want[j][i] {
					t.Fatalf("%s: QueryBatch deviates at (%d,%d)", algo, i, j)
				}
			}
		}
		// Degenerate worker counts fall back to the serial path.
		if _, err := eng.QueryBatch(queries[:1], 8); err != nil {
			t.Fatal(err)
		}
	}
}

func TestQueryBatchPropagatesErrors(t *testing.T) {
	eng, err := NewEngine(paperGraph(t), Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryBatch([]int{0, 1, 2, 99}, 2); err == nil {
		t.Fatal("out-of-range query accepted")
	}
}

func TestNewWeightedGraphEngine(t *testing.T) {
	// A weighted star: node 0's in-edges from 1 (weight 9) and 2 (weight 1).
	// Nodes 1 and 2 share node 0's... build something where weights change
	// the ranking: 3 and 4 both point at 0; 3 also heavily at 1.
	g, err := NewWeightedGraph(5, []WeightedEdge{
		{3, 0, 1}, {4, 0, 1},
		{3, 1, 10}, {4, 2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, Options{Algorithm: AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	col, err := eng.QueryOne(0)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1's in-mass concentrates on 3, node 2's on 4; both share one
	// in-neighbour with node 0, so both are similar to 0, with finite
	// positive scores.
	if col[1] <= 0 || col[2] <= 0 {
		t.Fatalf("weighted similarities = %v", col)
	}
	if _, err := NewWeightedGraph(2, []WeightedEdge{{0, 5, 1}}); !errors.Is(err, ErrBadEdge) {
		t.Fatalf("err = %v", err)
	}
	if _, err := NewWeightedGraph(2, []WeightedEdge{{0, 1, -2}}); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestLoadWeightedGraph(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.txt")
	if err := os.WriteFile(path, []byte("0 2 3.0\n1 2 1.0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadWeightedGraph(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	if g.OutDegree(0) != 1 {
		t.Fatalf("OutDegree = %d", g.OutDegree(0))
	}
	in := g.InDegrees()
	if in[2] != 2 {
		t.Fatalf("InDegrees = %v", in)
	}
	// Node 2's column distributes 0.75/0.25 across in-neighbours 0 and 1.
	eng, err := NewEngine(g, Options{Algorithm: AlgoExact})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.QueryOne(2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWeightedGraph(filepath.Join(t.TempDir(), "nope"), 3); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestSaveIndexTierQuantizedRoundTrip(t *testing.T) {
	g := paperGraph(t)
	eng, err := NewEngine(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := eng.QueryOne(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tier := range []string{"f32", "int8"} {
		path := filepath.Join(t.TempDir(), tier+".csrx")
		if err := eng.SaveIndexTier(path, tier); err != nil {
			t.Fatal(err)
		}
		back, err := LoadEngine(g, path)
		if err != nil {
			t.Fatal(err)
		}
		// The quantized engine reports a positive error bound even at
		// full rank, and its answers honour it against the exact engine.
		bound := back.TruncationBound(back.Stats().Rank)
		if bound <= 0 {
			t.Fatalf("%s: full-rank bound %g, want > 0", tier, bound)
		}
		got, err := back.QueryOne(1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range exact {
			if d := math.Abs(got[i] - exact[i]); d > bound {
				t.Fatalf("%s: node %d deviates %g > bound %g", tier, i, d, bound)
			}
		}
		if err := back.Close(); err != nil {
			t.Fatal(err)
		}
		if err := back.Close(); err != nil {
			t.Fatal("double Close must be safe:", err)
		}
	}
	// Unknown tiers are rejected before touching the disk.
	if err := eng.SaveIndexTier(filepath.Join(t.TempDir(), "x.csrx"), "fp7"); err == nil {
		t.Fatal("bogus tier accepted")
	}
	// Close on a precomputed (unmapped) engine and on baselines is a no-op.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rls, err := NewEngine(g, Options{Algorithm: AlgoRLS})
	if err != nil {
		t.Fatal(err)
	}
	if err := rls.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSaveSnapshotTierPublishesQuantized(t *testing.T) {
	g := paperGraph(t)
	eng, err := NewEngine(g, Options{Rank: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	gen, _, err := eng.SaveSnapshotTier(dir, "int8")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first snapshot generation = %d, want 1", gen)
	}
	back, snap, err := RecoverEngine(g, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	if snap.Recovered {
		t.Fatal("clean publish reported as recovered")
	}
	if bound := back.TruncationBound(back.Stats().Rank); bound <= 0 {
		t.Fatal("recovered engine lost its quantization bound")
	}
}

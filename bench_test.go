package csrplus

// bench_test.go exposes every experiment of the paper's evaluation as a
// testing.B benchmark, one per table/figure, so `go test -bench=.`
// regenerates the whole suite on quick-scale stand-ins. The full-scale
// numbers (DESIGN.md §5 scales) come from `go run ./cmd/csrbench -exp all`
// and are recorded in EXPERIMENTS.md.

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"csrplus/internal/baseline"
	"csrplus/internal/bench"
	"csrplus/internal/graph"
	"csrplus/internal/serve"
	"csrplus/internal/svd"
)

func quickEnv(b *testing.B) *bench.Env {
	b.Helper()
	return bench.NewEnv(nil).Quick()
}

func reportCells(b *testing.B, skipped *int, ran *int) {
	b.Helper()
	b.ReportMetric(float64(*ran), "cells-run")
	b.ReportMetric(float64(*skipped), "cells-guarded")
}

// BenchmarkTable1 renders the complexity table (sanity baseline; no
// numeric content).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.RenderTable1(nil)
	}
}

// BenchmarkFig2 runs the Figure 2/6 grid: total time of the four
// algorithms across the six datasets, with guard markers where the paper
// reports crashes.
func BenchmarkFig2(b *testing.B) {
	env := quickEnv(b)
	skipped, ran := 0, 0
	for i := 0; i < b.N; i++ {
		grid, err := env.RunGrid()
		if err != nil {
			b.Fatal(err)
		}
		skipped, ran = 0, 0
		for _, ds := range grid.Datasets {
			for _, algo := range grid.Algos {
				if grid.Cells[ds][algo].Skipped {
					skipped++
				} else {
					ran++
				}
			}
		}
	}
	reportCells(b, &skipped, &ran)
}

// BenchmarkFig3 measures CSR+'s phase split across |Q| (Figure 3); the
// same cells carry Figure 7's phase memory.
func BenchmarkFig3(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunPhaseSweep([]int{10, 30, 50, 70}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 sweeps the rank r (Figure 4 time view, Figure 8 memory
// view).
func BenchmarkFig4(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunRankSweep([]int{3, 5, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5 sweeps the query-set size |Q| (Figure 5 time view,
// Figure 9 memory view).
func BenchmarkFig5(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunQuerySweep([]int{10, 30, 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 reports the grid's peak analytic memory for CSR+ on the
// largest stand-in (the Figure 6 headline: linear growth).
func BenchmarkFig6(b *testing.B) {
	env := quickEnv(b)
	var peak int64
	for i := 0; i < b.N; i++ {
		grid, err := env.RunGrid()
		if err != nil {
			b.Fatal(err)
		}
		peak = grid.Cells["WB"]["CSR+"].PeakBytes
	}
	b.ReportMetric(float64(peak), "csrplus-peak-bytes")
}

// BenchmarkFig7 isolates the query-phase memory growth of CSR+ (Figure 7).
func BenchmarkFig7(b *testing.B) {
	env := quickEnv(b)
	var q10, q70 int64
	for i := 0; i < b.N; i++ {
		s, err := env.RunPhaseSweep([]int{10, 70})
		if err != nil {
			b.Fatal(err)
		}
		q10 = s.QueryCells["FB"][0].QueryBytes
		q70 = s.QueryCells["FB"][1].QueryBytes
	}
	b.ReportMetric(float64(q70)/float64(q10), "query-bytes-growth")
}

// BenchmarkFig8 reports CSR+ memory growth across ranks (Figure 8's
// "gently increases").
func BenchmarkFig8(b *testing.B) {
	env := quickEnv(b)
	var low, high int64
	for i := 0; i < b.N; i++ {
		s, err := env.RunRankSweep([]int{3, 9})
		if err != nil {
			b.Fatal(err)
		}
		low = s.Cells["FB"]["CSR+"][0].PeakBytes
		high = s.Cells["FB"]["CSR+"][1].PeakBytes
	}
	b.ReportMetric(float64(high)/float64(low), "mem-growth-3x-rank")
}

// BenchmarkFig9 reports CSR+ vs CSR-RLS memory sensitivity to |Q|
// (Figure 9).
func BenchmarkFig9(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunQuerySweep([]int{10, 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3 measures the AvgDiff accuracy experiment.
func BenchmarkTable3(b *testing.B) {
	env := quickEnv(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		res, err := env.RunTable3([]int{10, 20})
		if err != nil {
			b.Fatal(err)
		}
		avg = res.Cells["FB"][1].AvgDiff
	}
	b.ReportMetric(avg, "avgdiff-r20")
}

// --- Micro-benchmarks for the kernels the experiments stand on. ---

func benchGraph(b *testing.B) *graph.Graph {
	b.Helper()
	g, err := graph.RMAT(12, 40000, graph.DefaultRMAT, 5)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkCSRPlusPrecompute isolates Algorithm 1's phase I.
func BenchmarkCSRPlusPrecompute(b *testing.B) {
	g := benchGraph(b)
	cfg := baseline.Config{Rank: 5, SVD: svd.Options{Seed: 1}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := baseline.NewCSRPlus(cfg)
		if err := r.Precompute(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSRPlusQuery isolates Algorithm 1's phase II at |Q| = 100.
func BenchmarkCSRPlusQuery(b *testing.B) {
	g := benchGraph(b)
	r := baseline.NewCSRPlus(baseline.Config{Rank: 5, SVD: svd.Options{Seed: 1}})
	if err := r.Precompute(g); err != nil {
		b.Fatal(err)
	}
	queries := make([]int, 100)
	for i := range queries {
		queries[i] = i * 17 % g.N()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Query(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpMV measures the sparse kernel everything reduces to.
func BenchmarkSpMV(b *testing.B) {
	g := benchGraph(b)
	q, err := g.Transition()
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, g.N())
	for i := range x {
		x[i] = 1 / float64(g.N())
	}
	y := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y = q.MulVec(x, y)
	}
	_ = y
}

// BenchmarkTruncatedSVD measures the rank-5 decomposition both drivers.
func BenchmarkTruncatedSVD(b *testing.B) {
	g := benchGraph(b)
	q, err := g.Transition()
	if err != nil {
		b.Fatal(err)
	}
	for _, method := range []svd.Method{svd.Randomized, svd.Lanczos} {
		b.Run(method.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := svd.Truncated(q, 5, svd.Options{Method: method}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Serving-layer benchmarks: dynamic multi-source batching. ---

// benchServe drives the internal/serve layer with concurrent single-node
// top-k clients against a real CSR+ engine, on a hot-key workload (4
// popular nodes — the shape a similarity service sees). The engine runs
// at a production-accuracy rank (32), where the per-column query cost
// n·r dominates per-request overhead. The batched/unbatched pair
// quantifies the serving-time value of the paper's multi-source queries:
// one engine pass over |Q| coalesced requests shares the per-call
// overhead and computes each hot column once, versus |Q| independent
// single-source passes.
func benchServe(b *testing.B, cfg serve.Config) {
	b.Helper()
	g, err := graph.RMAT(12, 40000, graph.DefaultRMAT, 5)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := NewEngine(&Graph{g: g}, Options{Rank: 32})
	if err != nil {
		b.Fatal(err)
	}
	cfg.MaxPending = 1 << 16 // never shed inside the benchmark
	s := serve.NewMat(g.N(), eng.QueryInto, cfg)
	defer s.Close()

	var next atomic.Int64
	b.SetParallelism(16) // >= 16 concurrent clients per GOMAXPROCS
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			node := int(next.Add(1)%4) * 97 // 4 hot nodes
			if _, _, err := s.TopK(context.Background(), []int{node}, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	m := s.Metrics()
	if batches := m.Batches(); batches > 0 {
		b.ReportMetric(float64(m.Admitted())/float64(batches), "requests-per-engine-call")
	}
}

// BenchmarkServeBatched coalesces concurrent requests into multi-source
// engine passes: strict-linger throughput profile, one engine worker.
// MaxBatch exceeds the hot-set size so batches accumulate duplicate
// requests for the hot columns — each computed once per pass — and the
// linger window (small next to the batch's engine time) bounds the wait.
func BenchmarkServeBatched(b *testing.B) {
	benchServe(b, serve.Config{
		MaxBatch:     8,
		Linger:       100 * time.Microsecond,
		StrictLinger: true,
		Workers:      1,
	})
}

// BenchmarkServeUnbatched issues every request as its own engine call
// (maxBatch 1) — the pre-serving-layer behaviour, kept as the baseline.
func BenchmarkServeUnbatched(b *testing.B) {
	benchServe(b, serve.Config{MaxBatch: 1, Linger: -1})
}

// BenchmarkAblation runs the design-choice ablation study (solver
// variants, query routes, SVD drivers).
func BenchmarkAblation(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunAblation([]int{3, 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankEval runs the ranking-quality extension experiment.
func BenchmarkRankEval(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunRankEval([]int{5, 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCSweep runs the damping-factor sensitivity extension.
func BenchmarkCSweep(b *testing.B) {
	env := quickEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := env.RunCSweep([]float64{0.4, 0.8}); err != nil {
			b.Fatal(err)
		}
	}
}
